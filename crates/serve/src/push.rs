//! The store-push node: a real `fresca-store` backend that batches
//! writes and pushes `Invalidate`/`Update` batches to the cache nodes
//! owning each key.
//!
//! This is the paper's Figure-4 pipeline lifted off the simulator and
//! onto the wire. A [`StorePusher`] drives the store-side freshness
//! machinery — the shared [`OriginState`] (versioned store, §3.1
//! [`fresca_store::InvalidationTracker`], live adaptive policy) plus
//! the per-interval dirty-key [`WriteBuffer`] — over one framed TCP
//! connection per cache node, routed by the same [`HashRing`] every
//! other cluster participant computes. Writes mark keys dirty;
//! [`StorePusher::flush`] drains the buffer, partitions the dirty keys
//! by ring owner, and sends each node `Invalidate { seq, keys }` and/or
//! `Update { seq, items }` frames, then blocks for the `Ack { seq }`
//! each node owes.
//!
//! Three policies mirror the paper's §3.3 spectrum:
//!
//! * [`PushPolicy::Invalidate`] / [`PushPolicy::Update`] — the static
//!   always-invalidate and always-update policies of the simulation
//!   engines (and the original `--policy` flag, kept as an override).
//! * [`PushPolicy::Adaptive`] — per key, per flush: update iff
//!   `E[W]·c_u < c_m + c_i`, with `E[W]` estimated live from the read
//!   statistics the serving tier reports to the shared origin state.
//!   A mixed workload produces *mixed* batches — hot-read keys ride
//!   `Update` frames, write-mostly keys ride `Invalidate` frames, and
//!   both are counted in [`PushStats::decided_update`] /
//!   [`PushStats::decided_invalidate`].
//!
//! Sequence numbers are **per node** (each connection is its own
//! reliable channel, exactly like the simulation's per-link
//! `ReliableSender`), monotone from 1, assigned at send time — an
//! adaptive flush may send a node two frames (one invalidate, one
//! update), each with its own seq.
//!
//! ## Version domains
//!
//! The store's per-key versions and a cache node's serving versions are
//! *different counters*: the node allocates serving versions from its
//! own global monotone counter so the per-connection anomaly check
//! clients run (served version never regresses below an acked write)
//! stays sound even while a store pushes refreshes. A pushed
//! `UpdateItem` therefore carries the store's version as provenance,
//! but the node re-versions the refreshed entry from its own counter —
//! see `docs/PROTOCOL.md`, *Invalidate/Update on the serving path*.

use crate::origin::{OriginState, DEFAULT_ORIGIN_VALUE_SIZE};
use crate::ring::HashRing;
use fresca_core::cost::{CostModel, ObjectSize};
use fresca_core::policy::FlushDecision;
use fresca_net::{payload, FramedStream, Message, UpdateItem};
use fresca_store::{Record, WriteBuffer};
use parking_lot::Mutex;
use serde::Serialize;
use std::io;
use std::net::TcpStream;
use std::sync::Arc;

/// What the store sends for a dirty key at flush time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushPolicy {
    /// Send key-only `Invalidate` batches: cheap, but a pushed key is
    /// refused on its owning node until something re-populates it.
    Invalidate,
    /// Send full `Update` batches: each item re-freshens the cached
    /// entry in place (absent keys are untouched, per the paper).
    Update,
    /// Decide per key from the live `E[W]` estimate (§3.3): update iff
    /// `E[W]·c_u < c_m + c_i`. Keys with no estimate yet default to
    /// update — a key nobody has read is assumed cheap to keep fresh
    /// until its write run proves otherwise.
    Adaptive,
}

impl PushPolicy {
    /// Parse a CLI spelling. `None` for anything unknown.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "invalidate" => Some(PushPolicy::Invalidate),
            "update" => Some(PushPolicy::Update),
            "adaptive" => Some(PushPolicy::Adaptive),
            _ => None,
        }
    }

    /// CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            PushPolicy::Invalidate => "invalidate",
            PushPolicy::Update => "update",
            PushPolicy::Adaptive => "adaptive",
        }
    }
}

/// Store-push configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushConfig {
    /// Invalidate, update, or per-key adaptive batches.
    pub policy: PushPolicy,
    /// Virtual nodes per ring member — must match the cluster's other
    /// participants.
    pub vnodes: usize,
    /// Cost model the adaptive policy decides under (ignored by the
    /// static policies).
    pub cost: CostModel,
}

impl Default for PushConfig {
    fn default() -> Self {
        PushConfig {
            policy: PushPolicy::Invalidate,
            vnodes: crate::ring::DEFAULT_VNODES,
            cost: CostModel::default(),
        }
    }
}

/// One acknowledged per-node batch, as returned by
/// [`StorePusher::flush`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReceipt {
    /// Address of the cache node the batch went to.
    pub node: String,
    /// Sequence number the batch carried — and the `Ack` echoed.
    pub seq: u64,
    /// Keys in the batch.
    pub keys: usize,
    /// Exact wire bytes of the batch frame (the paper's `c_i`/`c_u`
    /// cost, measured rather than modelled).
    pub wire_bytes: usize,
}

/// Cumulative counters for a pusher's lifetime. Serializes to JSON for
/// the `store-push` binary's `--json` flag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PushStats {
    /// Writes applied to the backing store.
    pub writes: u64,
    /// Interval flushes executed (including empty ones).
    pub flushes: u64,
    /// Per-node batches sent.
    pub batches: u64,
    /// Keys carried across all batches.
    pub keys_pushed: u64,
    /// Acks received (equals `batches` unless a node failed).
    pub acks: u64,
    /// Invalidate sends suppressed by the tracker (§3.1 dedup).
    pub suppressed: u64,
    /// Writes coalesced into an existing dirty mark within an interval.
    pub coalesced: u64,
    /// Total wire bytes of pushed batches.
    pub push_bytes: u64,
    /// Dirty keys the flush decided to invalidate (counted before §3.1
    /// suppression; the static invalidate policy counts every key here).
    pub decided_invalidate: u64,
    /// Dirty keys the flush decided to update.
    pub decided_update: u64,
}

/// A batch built during a flush but not yet sent: the seq is assigned
/// at send time, so an adaptive flush can give one node two frames.
#[derive(Debug)]
enum PendingBatch {
    Invalidate(Vec<u64>),
    Update(Vec<UpdateItem>),
}

impl PendingBatch {
    fn keys(&self) -> usize {
        match self {
            PendingBatch::Invalidate(keys) => keys.len(),
            PendingBatch::Update(items) => items.len(),
        }
    }
}

/// A live store node pushing freshness traffic into a cache cluster.
pub struct StorePusher {
    ring: HashRing,
    /// One blocking framed connection per ring member, aligned with
    /// `ring.nodes()`. Push traffic is strictly send-batch/await-ack, so
    /// the simple blocking transport is the right tool.
    conns: Vec<FramedStream<TcpStream>>,
    /// Next sequence number per node, starting at 1.
    next_seq: Vec<u64>,
    /// The store-side brain, shared with an origin listener when one is
    /// serving refetches for the same backend (see [`crate::origin`]).
    origin: Arc<Mutex<OriginState>>,
    buffer: WriteBuffer,
    config: PushConfig,
    stats: PushStats,
}

impl std::fmt::Debug for StorePusher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorePusher")
            .field("nodes", &self.ring.nodes())
            .field("policy", &self.config.policy)
            .field("stats", &self.stats)
            .finish()
    }
}

impl StorePusher {
    /// Connect to every cache node in `addrs` (the ring is built from
    /// the addresses as given — all cluster participants must spell
    /// them identically), with a private backend state.
    pub fn connect<S: AsRef<str>>(addrs: &[S], config: PushConfig) -> io::Result<Self> {
        let origin = Arc::new(Mutex::new(OriginState::with_default_estimator(
            DEFAULT_ORIGIN_VALUE_SIZE,
        )));
        StorePusher::connect_shared(addrs, config, origin)
    }

    /// [`StorePusher::connect`], but sharing an existing backend state —
    /// the wiring that closes the freshness loop: hand the same
    /// `Arc<Mutex<OriginState>>` to [`crate::origin::spawn`] and cache
    /// refetches clear suppression for this pusher while serving-tier
    /// read stats steer its adaptive decisions.
    pub fn connect_shared<S: AsRef<str>>(
        addrs: &[S],
        config: PushConfig,
        origin: Arc<Mutex<OriginState>>,
    ) -> io::Result<Self> {
        let ring = HashRing::try_from_members(config.vnodes, addrs)?;
        let conns = ring
            .nodes()
            .iter()
            .map(|addr| {
                let stream = TcpStream::connect(addr.as_str())?;
                stream.set_nodelay(true)?;
                Ok(FramedStream::new(stream))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let next_seq = vec![1; conns.len()];
        Ok(StorePusher {
            ring,
            conns,
            next_seq,
            origin,
            buffer: WriteBuffer::new(),
            config,
            stats: PushStats::default(),
        })
    }

    /// The ring this pusher partitions batches by.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The shared backend state (store, tracker, adaptive policy).
    pub fn origin_state(&self) -> Arc<Mutex<OriginState>> {
        Arc::clone(&self.origin)
    }

    /// Counters so far.
    pub fn stats(&self) -> PushStats {
        let mut s = self.stats;
        s.suppressed = self.origin.lock().tracker().suppressed();
        s.coalesced = self.buffer.coalesced();
        s
    }

    /// Apply a client write to the backing store and mark the key dirty
    /// for the next flush. Returns the store's new record.
    pub fn write(&mut self, key: u64, value_size: u32) -> Record {
        let rec = self.origin.lock().write(key, value_size);
        self.buffer.mark_dirty(key);
        self.stats.writes += 1;
        rec
    }

    /// The store served a miss-path read of `key` (the cache-aside
    /// refetch after an invalidation): the backend no longer considers
    /// the key invalidated, so the *next* write triggers a fresh
    /// invalidate instead of being suppressed. Returns the store's
    /// record for the read.
    ///
    /// This is the §3.1 backchannel the tracking assumption rests on.
    /// When an origin listener serves refetches on this pusher's shared
    /// state ([`StorePusher::connect_shared`] + [`crate::origin::spawn`])
    /// the backchannel runs itself; this method remains for embedders
    /// whose refetch traffic arrives out of band.
    pub fn refetched(&mut self, key: u64, default_size: u32) -> Record {
        let mut o = self.origin.lock();
        o.refetched(key, default_size)
    }

    /// Distinct keys dirty in the current interval.
    pub fn dirty(&self) -> usize {
        self.buffer.len()
    }

    /// End-of-interval flush: drain the dirty set, partition it by ring
    /// owner, decide invalidate-vs-update for each key, send each
    /// owning node its batch(es), and block for each node's `Ack`.
    /// Returns one receipt per batch actually sent (nodes owning no
    /// dirty key this interval get nothing; §3.1 suppression may empty
    /// an invalidate batch out entirely). Under the static policies a
    /// node gets at most one frame per flush; under the adaptive policy
    /// at most two (its invalidate share and its update share).
    ///
    /// On a transport or ack error the flush stops and the error
    /// propagates — but no freshness signal is lost: the failed batch's
    /// keys and every not-yet-sent batch's keys are re-marked dirty
    /// (and their tracker entries rolled back), so the next flush
    /// resends them, reusing the failed batch's sequence number. Cache
    /// nodes apply batches idempotently, so a batch that was received
    /// but whose ack was lost is harmless to resend.
    pub fn flush(&mut self) -> io::Result<Vec<BatchReceipt>> {
        self.stats.flushes += 1;
        let dirty = self.buffer.drain();
        let mut receipts = Vec::new();
        if dirty.is_empty() {
            return Ok(receipts);
        }
        // Build every batch before sending any — under ONE lock
        // acquisition, released before the first blocking send — so a
        // mid-flush failure knows exactly which keys still need
        // pushing and a slow cache node never stalls the origin
        // listener sharing this state.
        let mut batches: Vec<(usize, PendingBatch)> = Vec::new();
        {
            let mut o = self.origin.lock();
            for (node, keys) in self.ring.partition(dirty).into_iter().enumerate() {
                if keys.is_empty() {
                    continue;
                }
                let mut inv_keys: Vec<u64> = Vec::new();
                let mut upd_items: Vec<UpdateItem> = Vec::new();
                for k in keys {
                    let rec = o.store().peek(k).expect("dirty keys were written");
                    let decision = match self.config.policy {
                        PushPolicy::Invalidate => FlushDecision::Invalidate,
                        PushPolicy::Update => FlushDecision::Update,
                        PushPolicy::Adaptive => o.decide(
                            k,
                            &self.config.cost,
                            ObjectSize { key: 8, value: rec.value_size },
                        ),
                    };
                    match decision {
                        FlushDecision::Invalidate => {
                            self.stats.decided_invalidate += 1;
                            // §3.1 tracking: a key the backend already
                            // believes invalidated needs no second
                            // invalidate until a refetch clears it.
                            if o.should_send_invalidate(k) {
                                inv_keys.push(k);
                            }
                        }
                        _ => {
                            self.stats.decided_update += 1;
                            // An update re-freshens the cached entry, so
                            // the backend no longer considers the key
                            // invalidated. The batch carries the store's
                            // real bytes: the deterministic pattern every
                            // writer uses, so checksum-verifying readers
                            // accept refreshed entries.
                            o.clear_invalidated(k);
                            upd_items.push(UpdateItem {
                                key: k,
                                version: rec.version,
                                value: payload::pattern(k, rec.value_size as usize),
                            });
                        }
                    }
                }
                if !inv_keys.is_empty() {
                    batches.push((node, PendingBatch::Invalidate(inv_keys)));
                }
                if !upd_items.is_empty() {
                    batches.push((node, PendingBatch::Update(upd_items)));
                }
            }
        }
        for i in 0..batches.len() {
            let (node, ref batch) = batches[i];
            match self.send_batch(node, batch) {
                Ok(receipt) => receipts.push(receipt),
                Err(e) => {
                    self.restore_unsent(&batches[i..]);
                    return Err(e);
                }
            }
        }
        Ok(receipts)
    }

    /// A flush failed at some batch: put the failed and never-sent
    /// batches' keys back into the dirty buffer (and roll back their
    /// invalidation-tracker marks) so the next flush carries them.
    fn restore_unsent(&mut self, unsent: &[(usize, PendingBatch)]) {
        let mut o = self.origin.lock();
        for (_, batch) in unsent {
            match batch {
                PendingBatch::Invalidate(keys) => {
                    for &k in keys {
                        o.clear_invalidated(k);
                        self.buffer.mark_dirty(k);
                    }
                }
                PendingBatch::Update(items) => {
                    for it in items {
                        self.buffer.mark_dirty(it.key);
                    }
                }
            }
        }
    }

    /// Send one batch (stamping it with the node's next seq) and block
    /// for its ack.
    fn send_batch(&mut self, node: usize, batch: &PendingBatch) -> io::Result<BatchReceipt> {
        let seq = self.next_seq[node];
        let msg = match batch {
            PendingBatch::Invalidate(keys) => Message::Invalidate { seq, keys: keys.clone() },
            PendingBatch::Update(items) => Message::Update { seq, items: items.clone() },
        };
        let keys = batch.keys();
        let wire_bytes = msg.wire_size();
        let addr = self.ring.nodes()[node].clone();
        self.conns[node].send(&msg)?;
        self.stats.batches += 1;
        self.stats.keys_pushed += keys as u64;
        self.stats.push_bytes += wire_bytes as u64;
        match self.conns[node].recv()? {
            Some(Message::Ack { seq: acked }) if acked == seq => {
                self.stats.acks += 1;
                self.next_seq[node] += 1;
                Ok(BatchReceipt { node: addr, seq, keys, wire_bytes })
            }
            Some(other) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("node {addr}: expected Ack {{ seq: {seq} }}, got {other:?}"),
            )),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("node {addr} closed before acking seq {seq}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{self, ServerConfig};
    use fresca_net::ReadStat;

    fn spawn_cluster(n: usize) -> (Vec<server::ServerHandle>, Vec<String>) {
        let handles: Vec<_> = (0..n)
            .map(|_| server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind"))
            .collect();
        let addrs = handles.iter().map(|h| h.addr().to_string()).collect();
        (handles, addrs)
    }

    #[test]
    fn policy_parse_roundtrip() {
        assert_eq!(PushPolicy::parse("invalidate"), Some(PushPolicy::Invalidate));
        assert_eq!(PushPolicy::parse("update"), Some(PushPolicy::Update));
        assert_eq!(PushPolicy::parse("adaptive"), Some(PushPolicy::Adaptive));
        assert_eq!(PushPolicy::parse("oracle"), None);
        for p in [PushPolicy::Invalidate, PushPolicy::Update, PushPolicy::Adaptive] {
            assert_eq!(PushPolicy::parse(p.name()), Some(p));
        }
    }

    #[test]
    fn empty_flush_sends_nothing() {
        let (handles, addrs) = spawn_cluster(2);
        let mut pusher = StorePusher::connect(&addrs, PushConfig::default()).unwrap();
        assert!(pusher.flush().unwrap().is_empty());
        let stats = pusher.stats();
        assert_eq!((stats.flushes, stats.batches, stats.acks), (1, 0, 0));
        for h in handles {
            h.shutdown();
        }
    }

    #[test]
    fn invalidate_batches_are_acked_per_node_and_deduped() {
        let (handles, addrs) = spawn_cluster(2);
        let mut pusher = StorePusher::connect(&addrs, PushConfig::default()).unwrap();
        for key in 0..32u64 {
            pusher.write(key, 16);
            pusher.write(key, 16); // coalesces within the interval
        }
        let receipts = pusher.flush().unwrap();
        let pushed: usize = receipts.iter().map(|r| r.keys).sum();
        assert_eq!(pushed, 32, "every dirty key pushed exactly once");
        for r in &receipts {
            assert_eq!(r.seq, 1, "first batch on each connection");
            assert!(addrs.contains(&r.node));
        }
        // A second write burst to the same keys is fully suppressed:
        // the backend knows they are already invalidated.
        for key in 0..32u64 {
            pusher.write(key, 16);
        }
        assert!(pusher.flush().unwrap().is_empty());
        let stats = pusher.stats();
        assert_eq!(stats.acks, stats.batches);
        assert_eq!(stats.suppressed, 32);
        assert_eq!(stats.coalesced, 32);
        assert_eq!(stats.decided_invalidate, 64, "decisions counted pre-suppression");
        assert_eq!(stats.decided_update, 0);
        // The refetch backchannel clears suppression: a write after a
        // refetch triggers a fresh invalidate batch again.
        pusher.refetched(0, 16);
        pusher.write(0, 16);
        let receipts = pusher.flush().unwrap();
        assert_eq!(receipts.iter().map(|r| r.keys).sum::<usize>(), 1);
        for h in handles {
            h.shutdown();
        }
    }

    #[test]
    fn failed_flush_restores_dirty_keys_for_the_next_one() {
        let (handles, addrs) = spawn_cluster(2);
        let mut pusher = StorePusher::connect(&addrs, PushConfig::default()).unwrap();
        // Kill both nodes, then dirty keys spread across both: the flush
        // must fail — and must not lose any freshness signal doing so.
        for h in handles {
            h.shutdown();
        }
        for key in 0..32u64 {
            pusher.write(key, 16);
        }
        assert!(pusher.flush().is_err(), "flush against dead nodes fails");
        assert_eq!(pusher.dirty(), 32, "failed flush re-marks every unsent key dirty");
        // The tracker marks were rolled back too: a retry attempts a
        // real send again (and fails on the dead connection) instead of
        // suppressing everything into a silent empty Ok.
        assert!(pusher.flush().is_err(), "retry still pushes, not an empty success");
        assert_eq!(pusher.stats().suppressed, 0);
    }

    #[test]
    fn update_batches_carry_store_state_and_reach_the_cache() {
        let (handles, addrs) = spawn_cluster(2);
        let config = PushConfig { policy: PushPolicy::Update, ..Default::default() };
        let mut pusher = StorePusher::connect(&addrs, config).unwrap();
        // Updates only refresh entries the cache holds; populate first.
        let mut client = crate::ClusterClient::connect(&addrs, config.vnodes).unwrap();
        for key in 0..16u64 {
            client.put(key, payload::pattern(key, 8), None).unwrap();
        }
        for key in 0..16u64 {
            pusher.write(key, 24);
        }
        let receipts = pusher.flush().unwrap();
        assert_eq!(receipts.iter().map(|r| r.keys).sum::<usize>(), 16);
        // The refreshed bytes travel end to end: a read now sees the
        // store's 24-byte pattern payload, checksum-intact.
        for key in 0..16u64 {
            let got = client.get(key, None).unwrap();
            assert!(got.is_served());
            assert_eq!(got.value_size(), 24, "key {key} refreshed by the pushed update");
            assert!(payload::verify(key, &got.value), "key {key} pushed payload intact");
        }
        // Sequence numbers advance per node.
        for key in 0..16u64 {
            pusher.write(key, 8);
        }
        for r in pusher.flush().unwrap() {
            assert_eq!(r.seq, 2);
        }
        for h in handles {
            h.shutdown();
        }
    }

    #[test]
    fn adaptive_flush_splits_keys_by_live_read_frequency() {
        let (handles, addrs) = spawn_cluster(1);
        let config = PushConfig { policy: PushPolicy::Adaptive, ..Default::default() };
        let mut pusher = StorePusher::connect(&addrs, config).unwrap();
        // Teach the estimator through the same backchannel the serving
        // tier uses. Keys 0..8 are read-hot: each write run is length 1
        // before a read burst closes it → E[W] = 1, under the 2.2
        // threshold → update. Keys 8..16 run eight writes before a read
        // closes the sample → E[W] = 8 → invalidate.
        for key in 0..8u64 {
            pusher.write(key, 16);
        }
        {
            let origin = pusher.origin_state();
            let mut o = origin.lock();
            let stats: Vec<ReadStat> =
                (0..8).map(|k| ReadStat { key: k, reads: 50 }).collect();
            o.record_reads(&stats);
        }
        for _ in 0..8 {
            for key in 8..16u64 {
                pusher.write(key, 16);
            }
        }
        {
            let origin = pusher.origin_state();
            let mut o = origin.lock();
            let stats: Vec<ReadStat> =
                (8..16).map(|k| ReadStat { key: k, reads: 1 }).collect();
            o.record_reads(&stats);
        }
        // Dirty every key once more so one flush decides all sixteen.
        for key in 0..16u64 {
            pusher.write(key, 16);
        }
        // Populate the cache so updates have entries to refresh.
        let mut client = crate::ClusterClient::connect(&addrs, config.vnodes).unwrap();
        for key in 0..16u64 {
            client.put(key, payload::pattern(key, 8), None).unwrap();
        }
        let receipts = pusher.flush().unwrap();
        let stats = pusher.stats();
        assert!(stats.decided_update >= 8, "read-hot keys update: {stats:?}");
        assert!(stats.decided_invalidate >= 8, "write-run keys invalidate: {stats:?}");
        // The single node received both an invalidate and an update
        // frame, with distinct sequence numbers.
        assert_eq!(receipts.len(), 2, "mixed flush sends two frames: {receipts:?}");
        let seqs: Vec<u64> = receipts.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2], "per-node seqs stay monotone across the split");
        // Read-hot keys were refreshed in place; write-only keys were
        // invalidated (bounded reads refuse them).
        let hot = client.get(0, None).unwrap();
        assert!(hot.is_served());
        assert_eq!(hot.value_size(), 16, "updated in place from the store");
        let cold = client
            .get(12, Some(fresca_sim::SimDuration::from_secs(3600)))
            .unwrap();
        assert!(!cold.is_served(), "invalidated key refuses a bounded read");
        for h in handles {
            h.shutdown();
        }
    }
}
