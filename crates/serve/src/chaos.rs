//! Deterministic chaos schedules and the controller that executes them:
//! kill and restart cache nodes mid-run, drive the membership protocol
//! around each death, and report per-node availability windows.
//!
//! A [`ChaosSchedule`] is a **pure function of its seed** — like a
//! workload scenario, the same `(name, seed, duration, nodes)` always
//! produces the same kill/restart times and victims, so a chaos run
//! that trips a bug is replayable byte-for-byte. The schedule itself
//! knows nothing about processes; a [`Supervisor`] implementation
//! supplies the actual kill/respawn (SIGKILL of a `serve` child in the
//! `loadgen` binary, abrupt in-process shutdown in tests).
//!
//! The controller ([`run_schedule`]) is the cluster's operator during
//! the run. Around each event it drives the membership protocol from
//! the outside, exactly as a human (or an orchestrator) would:
//!
//! * **kill** — SIGKILL the victim, then send `LeaveReq` to a
//!   surviving member. The survivor bumps the epoch, adopts the
//!   shrunken ring, and announces it; clients re-route the victim's
//!   keys to their new owners on the next epoch refresh.
//! * **restart** — respawn the victim (it comes back empty, in solo
//!   state), then send `JoinReq` for it to a surviving member. The
//!   epoch bumps again, survivors stream the keys the victim now owns
//!   back to it, and full ownership is restored.
//!
//! What the load generator observed around those events lands in a
//! [`ChaosReport`]: per-node availability windows (killed → recovered),
//! error/refusal attribution, and the handoff counters that prove
//! ownership moved.

use crate::client::CacheClient;
use fresca_net::payload;
use parking_lot::Mutex;
use serde::Serialize;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// What a chaos event does to its victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Abruptly kill the node (SIGKILL — no drain, no goodbye).
    Kill,
    /// Respawn the node on its old address and rejoin it to the ring.
    Restart,
}

/// One scheduled membership disruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Offset into the run at which the event fires.
    pub at: Duration,
    /// Index of the victim in the node list.
    pub node: usize,
    /// Kill or restart.
    pub action: ChaosAction,
}

/// A named, seed-deterministic kill/restart schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// Schedule name as given on the command line.
    pub name: String,
    /// Events in firing order.
    pub events: Vec<ChaosEvent>,
}

/// Registered schedule names, for CLI help and validation.
pub const SCHEDULES: &[&str] = &["kill-one", "rolling"];

impl ChaosSchedule {
    /// Build the named schedule for a run of `duration` over `nodes`
    /// cluster members. Deterministic in every argument; `None` for an
    /// unknown name or a cluster too small to disrupt (chaos needs at
    /// least two nodes so a survivor can process leaves and joins).
    pub fn generate(name: &str, seed: u64, duration: Duration, nodes: usize) -> Option<Self> {
        if nodes < 2 {
            return None;
        }
        // Per-schedule jitter stream: mix the seed so `kill-one` and
        // `rolling` at the same seed do not correlate.
        let mut state = payload::mix(seed ^ payload::mix(name.len() as u64));
        let mut draw = move |range: std::ops::Range<f64>| {
            state = payload::mix(state);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            range.start + u * (range.end - range.start)
        };
        let frac = |d: Duration, f: f64| Duration::from_secs_f64(d.as_secs_f64() * f);
        let events = match name {
            // One victim dies ~40% in and comes back ~65% in: long
            // enough down to open a measurable window, early enough
            // back that post-restart handoff is exercised under load.
            "kill-one" => {
                let victim = (payload::mix(seed) % nodes as u64) as usize;
                vec![
                    ChaosEvent {
                        at: frac(duration, draw(0.35..0.45)),
                        node: victim,
                        action: ChaosAction::Kill,
                    },
                    ChaosEvent {
                        at: frac(duration, draw(0.60..0.70)),
                        node: victim,
                        action: ChaosAction::Restart,
                    },
                ]
            }
            // Every node dies and returns once, one at a time, evenly
            // spaced — the whole cluster survives a full rolling crash.
            "rolling" => {
                let slot = duration.as_secs_f64() / nodes as f64;
                (0..nodes)
                    .flat_map(|i| {
                        let base = slot * i as f64;
                        [
                            ChaosEvent {
                                at: Duration::from_secs_f64(base + slot * draw(0.10..0.20)),
                                node: i,
                                action: ChaosAction::Kill,
                            },
                            ChaosEvent {
                                at: Duration::from_secs_f64(base + slot * draw(0.50..0.60)),
                                node: i,
                                action: ChaosAction::Restart,
                            },
                        ]
                    })
                    .collect()
            }
            _ => return None,
        };
        Some(ChaosSchedule { name: name.to_string(), events })
    }
}

/// What actually kills and respawns nodes. The schedule and controller
/// stay process-agnostic: the `loadgen` binary implements this with
/// SIGKILLed child processes, tests with in-process server handles.
pub trait Supervisor: Send {
    /// Abruptly kill node `i`. Must not block past the kill itself.
    fn kill(&mut self, node: usize);
    /// Respawn node `i` on its old address; returns `true` once it is
    /// accepting connections again.
    fn restart(&mut self, node: usize) -> bool;
}

/// Live cluster state shared between the chaos controller thread and
/// the load-driving thread: which nodes are currently down, each
/// node's restart incarnation (version floors reset across it — a
/// restarted node's version counter starts over), and the epoch +
/// member list the controller last learned from a membership reply.
#[derive(Debug)]
pub struct ChaosShared {
    /// Restart count per node; bumped after each successful respawn.
    pub incarnations: Vec<AtomicU32>,
    /// True from kill until successful respawn.
    pub down: Vec<AtomicBool>,
    /// Last epoch the controller saw in a membership reply.
    pub epoch: AtomicU64,
    /// Member list at that epoch.
    pub view: Mutex<Vec<String>>,
}

impl ChaosShared {
    /// State for an `n`-node cluster, all up, at epoch `epoch` with
    /// member list `view`.
    pub fn new(n: usize, epoch: u64, view: Vec<String>) -> Self {
        ChaosShared {
            incarnations: (0..n).map(|_| AtomicU32::new(0)).collect(),
            down: (0..n).map(|_| AtomicBool::new(false)).collect(),
            epoch: AtomicU64::new(epoch),
            view: Mutex::new(view),
        }
    }

    /// Snapshot the current member list. The lock is held only for the
    /// clone, so callers never hold it across socket I/O or sleeps.
    pub fn view_snapshot(&self) -> Vec<String> {
        let members = self.view.lock().clone();
        members
    }
}

/// Availability window and attribution for one node of a chaos run.
/// Times are seconds from run start; `-1.0` marks "never happened".
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NodeWindow {
    /// The node's ring name.
    pub node: String,
    /// When the schedule killed it (`-1.0` = never killed).
    pub killed_at_secs: f64,
    /// When the supervisor had it accepting connections again.
    pub restarted_at_secs: f64,
    /// When the load generator first completed an operation against it
    /// after the restart — the close of the unavailability window.
    pub recovered_at_secs: f64,
    /// Operations lost to this node's death: submitted or in flight on
    /// a connection that died, or targeted at it while down.
    pub error_ops: u64,
    /// Reads refused (`RefusedStale`) against this node during the run
    /// — the per-window freshness-violation attribution.
    pub refusals: u64,
    /// Entries this node installed from handoff streams (post-restart
    /// ownership restoration shows up here).
    pub handoff_in: u64,
    /// Entries this node streamed out to new owners.
    pub handoff_out: u64,
    /// The node's membership epoch at end of run.
    pub epoch: u64,
}

impl NodeWindow {
    /// Width of the unavailability window in seconds, when it both
    /// opened and closed.
    pub fn window_secs(&self) -> Option<f64> {
        (self.killed_at_secs >= 0.0 && self.recovered_at_secs >= 0.0)
            .then_some(self.recovered_at_secs - self.killed_at_secs)
    }
}

/// What a chaos run did and observed, attached to the cluster report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChaosReport {
    /// Schedule name (reproducible together with the report's seed).
    pub schedule: String,
    /// Nodes killed.
    pub kills: u64,
    /// Nodes respawned.
    pub restarts: u64,
    /// Successful client reconnects across the run.
    pub reconnects: u64,
    /// Operations lost to dead nodes/connections (not retried — each
    /// is attributed to its node's window).
    pub error_ops: u64,
    /// Membership epoch when the run ended.
    pub final_epoch: u64,
    /// Per-node availability windows, in member-list order.
    pub windows: Vec<NodeWindow>,
}

impl ChaosReport {
    /// True when every killed node recovered and no unavailability
    /// window exceeded `bound` — the CI gate against unbounded (or
    /// never-closing) windows.
    pub fn windows_bounded(&self, bound: Duration) -> bool {
        self.windows.iter().all(|w| {
            if w.killed_at_secs < 0.0 {
                return true;
            }
            match w.window_secs() {
                Some(secs) => secs <= bound.as_secs_f64(),
                None => false,
            }
        })
    }
}

/// How long the controller keeps retrying the post-event membership
/// call (leave after a kill, join after a restart) against surviving
/// nodes before giving up. Survivors may briefly refuse connections
/// while absorbing the burst the death caused.
const MEMBERSHIP_RETRY_FOR: Duration = Duration::from_secs(5);

/// Execute `schedule` against a live cluster: sleep to each event,
/// kill/restart through the supervisor, and drive the leave/join
/// protocol against a surviving member. Returns the per-node
/// `(killed_at, restarted_at)` stamps (seconds from `start`).
///
/// Runs on its own thread for the duration of the load; the driver
/// thread watches `shared` for epoch changes and down flags.
pub fn run_schedule(
    schedule: &ChaosSchedule,
    supervisor: &mut dyn Supervisor,
    nodes: &[(String, SocketAddr)],
    start: Instant,
    shared: &ChaosShared,
) -> Vec<(f64, f64)> {
    let mut stamps = vec![(-1.0, -1.0); nodes.len()];
    for event in &schedule.events {
        if let Some(wait) = event.at.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let i = event.node;
        if i >= nodes.len() {
            continue;
        }
        match event.action {
            ChaosAction::Kill => {
                supervisor.kill(i);
                if let Some(flag) = shared.down.get(i) {
                    flag.store(true, Ordering::Release);
                }
                stamps[i].0 = start.elapsed().as_secs_f64();
                // Tell a survivor the victim is gone; the epoch bump
                // re-routes the victim's keys to their new owners.
                membership_call(nodes, i, shared, |client, name| client.leave(name));
            }
            ChaosAction::Restart => {
                if !supervisor.restart(i) {
                    continue;
                }
                if let Some(inc) = shared.incarnations.get(i) {
                    inc.fetch_add(1, Ordering::Release);
                }
                if let Some(flag) = shared.down.get(i) {
                    flag.store(false, Ordering::Release);
                }
                stamps[i].1 = start.elapsed().as_secs_f64();
                // Rejoin through a survivor: the epoch bumps again and
                // survivors stream the rejoined node's keys back.
                membership_call(nodes, i, shared, |client, name| client.join(name));
            }
        }
    }
    stamps
}

/// Drive one membership RPC (join or leave of `nodes[victim]`) against
/// the first reachable *surviving* node, retrying briefly. On success
/// the returned view updates `shared`. Failures after the retry budget
/// are swallowed: the run continues and the stuck epoch shows up in
/// the report's anomaly gates instead of wedging the controller.
fn membership_call(
    nodes: &[(String, SocketAddr)],
    victim: usize,
    shared: &ChaosShared,
    call: impl Fn(&mut CacheClient, &str) -> std::io::Result<(u64, Vec<String>)>,
) {
    let deadline = Instant::now() + MEMBERSHIP_RETRY_FOR;
    let victim_name = match nodes.get(victim) {
        Some((name, _)) => name.as_str(),
        None => return,
    };
    loop {
        for (j, (_, addr)) in nodes.iter().enumerate() {
            if j == victim || shared.down.get(j).is_some_and(|d| d.load(Ordering::Acquire)) {
                continue;
            }
            let outcome = CacheClient::connect(addr).and_then(|mut c| call(&mut c, victim_name));
            if let Ok((epoch, members)) = outcome {
                shared.epoch.store(epoch, Ordering::Release);
                *shared.view.lock() = members;
                return;
            }
        }
        if Instant::now() >= deadline {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_pure_functions_of_their_inputs() {
        let d = Duration::from_secs(10);
        let a = ChaosSchedule::generate("kill-one", 42, d, 3).unwrap();
        let b = ChaosSchedule::generate("kill-one", 42, d, 3).unwrap();
        assert_eq!(a, b, "same inputs, same schedule");
        let c = ChaosSchedule::generate("kill-one", 43, d, 3).unwrap();
        assert!(a != c, "a different seed moves the events");
        // Kill precedes restart, both within the run, same victim.
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.events[0].action, ChaosAction::Kill);
        assert_eq!(a.events[1].action, ChaosAction::Restart);
        assert_eq!(a.events[0].node, a.events[1].node);
        assert!(a.events[0].at < a.events[1].at);
        assert!(a.events[1].at < d);
    }

    #[test]
    fn rolling_visits_every_node_and_small_clusters_are_refused() {
        let d = Duration::from_secs(30);
        let s = ChaosSchedule::generate("rolling", 7, d, 3).unwrap();
        assert_eq!(s.events.len(), 6, "kill+restart per node");
        for i in 0..3 {
            let mine: Vec<_> = s.events.iter().filter(|e| e.node == i).collect();
            assert_eq!(mine.len(), 2);
            assert_eq!(mine[0].action, ChaosAction::Kill);
            assert!(mine[0].at < mine[1].at);
        }
        assert!(ChaosSchedule::generate("kill-one", 1, d, 1).is_none(), "no survivor, no chaos");
        assert!(ChaosSchedule::generate("nope", 1, d, 3).is_none(), "unknown name");
        for name in SCHEDULES {
            assert!(ChaosSchedule::generate(name, 1, d, 3).is_some(), "{name} registered");
        }
    }

    #[test]
    fn windows_bounded_requires_recovery() {
        let w = |killed: f64, recovered: f64| NodeWindow {
            node: "a:1".into(),
            killed_at_secs: killed,
            restarted_at_secs: recovered,
            recovered_at_secs: recovered,
            error_ops: 0,
            refusals: 0,
            handoff_in: 0,
            handoff_out: 0,
            epoch: 2,
        };
        let report = |windows: Vec<NodeWindow>| ChaosReport {
            schedule: "kill-one".into(),
            kills: 1,
            restarts: 1,
            reconnects: 1,
            error_ops: 0,
            final_epoch: 2,
            windows,
        };
        let bound = Duration::from_secs(5);
        // Never killed: trivially bounded. Killed and recovered fast: ok.
        assert!(report(vec![w(-1.0, -1.0), w(2.0, 4.5)]).windows_bounded(bound));
        // Window wider than the bound: fails.
        assert!(!report(vec![w(2.0, 9.0)]).windows_bounded(bound));
        // Killed but never recovered: fails — that is the unbounded case.
        assert!(!report(vec![w(2.0, -1.0)]).windows_bounded(bound));
        assert_eq!(w(2.0, 4.5).window_secs(), Some(2.5));
        assert_eq!(w(2.0, -1.0).window_secs(), None);
        // The report serializes for BENCH_chaos.json.
        let json = serde_json::to_string(&report(vec![w(2.0, 4.5)])).unwrap();
        for field in ["schedule", "windows", "recovered_at_secs", "handoff_in"] {
            assert!(json.contains(field), "chaos JSON missing {field}: {json}");
        }
    }
}
