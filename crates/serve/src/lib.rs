//! # fresca-serve — a real wire-protocol cache server and load generator
//!
//! Everything else in this workspace studies cache freshness under a
//! *simulated* clock and network. This crate closes the loop the paper
//! cares about: freshness guarantees only mean something end-to-end, once
//! requests actually cross a network boundary. It provides:
//!
//! * [`server`] — an event-driven TCP cache server fronting a
//!   [`fresca_cache::ShardedCache`]: a poll-based reactor (vendored
//!   `minipoll`, no external runtime) multiplexes all connections onto a
//!   configurable number of event-loop threads, speaking the
//!   `fresca-net` framed protocol. Writes carry a per-key TTL; reads
//!   carry a per-request max-staleness bound; responses say whether the
//!   entry was served fresh, served stale, refused, or missed — and echo
//!   each request's id, so responses to pipelined requests stay
//!   matchable.
//! * [`client`] — a blocking request/response client
//!   ([`client::CacheClient`]) and a pipelined one
//!   ([`client::PipelinedClient`]) that keeps many requests in flight on
//!   one connection, matching completions by [`fresca_net::RequestId`].
//! * [`loadgen`] — a closed-loop (N connections × a pipeline-depth
//!   window each) and open-loop (deadline-paced, never stalls on
//!   responses) load generator that replays `fresca-workload` traces via
//!   the [`fresca_workload::replay`] adapter and reports throughput, hit
//!   ratio, staleness violations, and p50/p99/p999 request latency.
//!
//! The `serve` and `loadgen` binaries wrap the last two for the command
//! line; `examples/remote_cache.rs` and `tests/wire_roundtrip.rs` at the
//! workspace root drive them in-process over localhost.
//!
//! ## Clocks
//!
//! The cache substrate keeps no clock of its own — every operation takes
//! `now: SimTime`. The engines feed it virtual time; this crate feeds it
//! *wall* time through [`ServeClock`], which pins `SimTime::ZERO` to
//! server start. TTLs and staleness bounds therefore mean real
//! nanoseconds here, with no change to the cache crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod loadgen;
pub mod server;

/// Flag parsing shared by the `serve` and `loadgen` binaries.
pub mod cli {
    /// Value of `--name <value>` in `args`, parsed, or `default` when the
    /// flag is absent or unparsable.
    pub fn arg<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    #[cfg(test)]
    mod tests {
        use super::arg;

        fn args(s: &[&str]) -> Vec<String> {
            s.iter().map(|s| s.to_string()).collect()
        }

        #[test]
        fn parses_present_flags_and_falls_back() {
            let a = args(&["bin", "--shards", "8", "--addr", "1.2.3.4:1"]);
            assert_eq!(arg(&a, "--shards", 16usize), 8);
            assert_eq!(arg(&a, "--addr", "x".to_string()), "1.2.3.4:1");
            assert_eq!(arg(&a, "--missing", 5u64), 5);
            // Unparsable value falls back to the default.
            assert_eq!(arg(&args(&["bin", "--shards", "abc"]), "--shards", 16usize), 16);
            // Flag at the end with no value falls back too.
            assert_eq!(arg(&args(&["bin", "--shards"]), "--shards", 16usize), 16);
        }
    }
}

pub use client::{CacheClient, GetOutcome, PipelinedClient, Response};
pub use loadgen::{LoadGenConfig, LoadReport, Mode};
pub use server::{ServerConfig, ServerHandle, ServerStatsSnapshot};

use fresca_sim::SimTime;
use std::time::Instant;

/// Maps the wall clock onto the cache's virtual timeline: `SimTime::ZERO`
/// is the instant the clock was started (server start), and `now()` is
/// the elapsed wall time since. Cheap to clone; clones share the origin.
#[derive(Debug, Clone, Copy)]
pub struct ServeClock {
    origin: Instant,
}

impl ServeClock {
    /// Start a clock at the current instant.
    pub fn start() -> Self {
        ServeClock { origin: Instant::now() }
    }

    /// Wall time elapsed since the origin, as a [`SimTime`].
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_from_zero() {
        let clock = ServeClock::start();
        let a = clock.now();
        let b = clock.now();
        assert!(a <= b);
        let copy = clock;
        assert!(copy.now() >= b, "clones share the origin");
    }
}
