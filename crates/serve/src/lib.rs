//! # fresca-serve — a real wire-protocol cache server and load generator
//!
//! Everything else in this workspace studies cache freshness under a
//! *simulated* clock and network. This crate closes the loop the paper
//! cares about: freshness guarantees only mean something end-to-end, once
//! requests actually cross a network boundary. It provides:
//!
//! * [`server`] — an event-driven TCP cache server built thread-per-core:
//!   a poll-based reactor (vendored `minipoll`, no external runtime)
//!   multiplexes all connections onto a configurable number of
//!   event-loop threads, and the cache shards (each a slab-backed
//!   [`fresca_cache::SlabCache`]) are partitioned across those loops at
//!   startup. Requests route by key: owner-local keys are served inline
//!   with no locking, cross-core operations are forwarded over the
//!   wakeup channels as completion-style messages. The server speaks the
//!   `fresca-net` framed protocol. Writes carry a per-key TTL; reads
//!   carry a per-request max-staleness bound; responses say whether the
//!   entry was served fresh, served stale, refused, or missed — and echo
//!   each request's id, so responses to pipelined requests stay
//!   matchable.
//! * [`client`] — a blocking request/response client
//!   ([`client::CacheClient`]) and a pipelined one
//!   ([`client::PipelinedClient`]) that keeps many requests in flight on
//!   one connection, matching completions by [`fresca_net::RequestId`].
//! * [`loadgen`] — a closed-loop (N connections × a pipeline-depth
//!   window each) and open-loop (deadline-paced, never stalls on
//!   responses) load generator that replays `fresca-workload` traces via
//!   the [`fresca_workload::replay`] adapter and reports throughput, hit
//!   ratio, per-status read counts, staleness violations, and
//!   p50/p99/p999 request latency — against one node or fanned out
//!   across a cluster.
//! * [`ring`] — a consistent-hash ring (virtual nodes, deterministic
//!   placement, minimal remapping) partitioning the key space across
//!   several cache nodes.
//! * [`cluster`] — [`cluster::ClusterClient`], which owns one
//!   [`client::PipelinedClient`] per ring member and routes every
//!   `get`/`put` to the node owning the key.
//! * [`push`] — the store side of the paper's freshness pipeline on the
//!   wire: [`push::StorePusher`] buffers writes in a real
//!   `fresca-store` backend and pushes per-node `Invalidate`/`Update`
//!   batches to the ring members owning each key, collecting per-node
//!   acks by sequence number. The policy is selectable — including
//!   `adaptive`, which decides invalidate-vs-update per key from live
//!   read-frequency estimates.
//! * [`origin`] — the origin endpoint cache servers refetch through
//!   when a bounded read would be refused or missed: shared
//!   store/tracker/estimator state ([`origin::OriginState`]) behind a
//!   blocking listener, closing the paper's §3.1 backchannel (a
//!   refetch clears invalidation suppression) and feeding the adaptive
//!   policy's per-key read rates.
//!
//! The `serve`, `loadgen` and `store-push` binaries wrap these for the
//! command line; `examples/remote_cache.rs`, `tests/wire_roundtrip.rs`
//! and `tests/cluster.rs` at the workspace root drive them in-process
//! over localhost.
//!
//! ## Clocks
//!
//! The cache substrate keeps no clock of its own — every operation takes
//! `now: SimTime`. The engines feed it virtual time; this crate feeds it
//! *wall* time through [`ServeClock`], which pins `SimTime::ZERO` to
//! server start. TTLs and staleness bounds therefore mean real
//! nanoseconds here, with no change to the cache crate.

#![forbid(unsafe_code)]

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod client;
pub mod cluster;
pub mod loadgen;
pub mod membership;
pub mod origin;
pub mod push;
pub mod ring;
pub mod server;

/// Flag parsing shared by the `serve`, `loadgen` and `store-push`
/// binaries.
pub mod cli {
    /// Value of `--name <value>` in `args`: the default when the flag is
    /// absent, the parsed value when present, and an error naming the
    /// offending flag when its value is missing or unparsable. Binaries
    /// use [`arg`], which turns the error into a nonzero exit — running
    /// with a silently-defaulted config after a typo is how a benchmark
    /// measures the wrong thing.
    pub fn try_arg<T: std::str::FromStr>(
        args: &[String],
        name: &str,
        default: T,
    ) -> Result<T, String> {
        let Some(i) = args.iter().position(|a| a == name) else {
            return Ok(default);
        };
        let Some(value) = args.get(i + 1) else {
            return Err(format!("flag {name} is missing its value"));
        };
        value
            .parse()
            .map_err(|_| format!("flag {name}: cannot parse {value:?}"))
    }

    /// [`try_arg`], exiting with status 2 (and the offending flag named
    /// on stderr) when the flag's value is missing or unparsable.
    pub fn arg<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
        match try_arg(args, name, default) {
            Ok(v) => v,
            Err(e) => {
                let bin = args.first().map(String::as_str).unwrap_or("fresca");
                eprintln!("{bin}: {e}");
                std::process::exit(2);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::try_arg;

        fn args(s: &[&str]) -> Vec<String> {
            s.iter().map(|s| s.to_string()).collect()
        }

        #[test]
        fn parses_present_flags_and_defaults_absent_ones() {
            let a = args(&["bin", "--shards", "8", "--addr", "1.2.3.4:1"]);
            assert_eq!(try_arg(&a, "--shards", 16usize), Ok(8));
            assert_eq!(try_arg(&a, "--addr", "x".to_string()), Ok("1.2.3.4:1".to_string()));
            assert_eq!(try_arg(&a, "--missing", 5u64), Ok(5));
        }

        #[test]
        fn unparsable_or_missing_values_name_the_flag() {
            // An unparsable value is an error naming the flag and the
            // value — not a silent fall-back to the default.
            let err = try_arg(&args(&["bin", "--shards", "abc"]), "--shards", 16usize)
                .unwrap_err();
            assert!(err.contains("--shards") && err.contains("abc"), "{err}");
            // A flag at the end with no value is an error too.
            let err = try_arg(&args(&["bin", "--shards"]), "--shards", 16usize).unwrap_err();
            assert!(err.contains("--shards") && err.contains("missing"), "{err}");
        }
    }
}

pub use chaos::{ChaosEvent, ChaosReport, ChaosSchedule, NodeWindow};
pub use client::{Backoff, CacheClient, ConnError, GetOutcome, PipelinedClient, Response, ServerProbe};
pub use cluster::ClusterClient;
pub use loadgen::{ClusterReport, LoadGenConfig, LoadReport, Mode, NodeReport};
pub use membership::Membership;
pub use origin::{OriginHandle, OriginState};
pub use push::{BatchReceipt, PushConfig, PushPolicy, PushStats, StorePusher};
pub use ring::HashRing;
pub use server::{ServerConfig, ServerHandle, ServerStatsSnapshot};

use fresca_sim::SimTime;
use std::time::Instant;

/// Maps the wall clock onto the cache's virtual timeline: `SimTime::ZERO`
/// is the instant the clock was started (server start), and `now()` is
/// the elapsed wall time since. Cheap to clone; clones share the origin.
#[derive(Debug, Clone, Copy)]
pub struct ServeClock {
    origin: Instant,
}

impl ServeClock {
    /// Start a clock at the current instant.
    pub fn start() -> Self {
        ServeClock { origin: Instant::now() }
    }

    /// Wall time elapsed since the origin, as a [`SimTime`].
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_from_zero() {
        let clock = ServeClock::start();
        let a = clock.now();
        let b = clock.now();
        assert!(a <= b);
        let copy = clock;
        assert!(copy.now() >= b, "clones share the origin");
    }
}
