//! Blocking request/response client for the serving-path protocol.

use fresca_net::{FramedStream, GetStatus, Message};
use fresca_sim::SimDuration;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Result of a staleness-bounded read as observed by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetOutcome {
    /// How the server resolved the read.
    pub status: GetStatus,
    /// Version served (0 when nothing was served).
    pub version: u64,
    /// Size of the value served (0 when nothing was served).
    pub value_size: u32,
    /// Age of the entry on the server's clock at serving time. For a
    /// refusal this is the age that exceeded the bound.
    pub age: SimDuration,
}

impl GetOutcome {
    /// True when a value was served (fresh or stale-within-bound).
    pub fn is_served(&self) -> bool {
        self.status.is_served()
    }
}

/// A blocking cache client: one TCP connection, one request in flight.
///
/// The load generator opens one of these per worker thread; anything
/// needing pipelining or multiplexing belongs in a future async
/// transport (see ROADMAP).
#[derive(Debug)]
pub struct CacheClient {
    framed: FramedStream<TcpStream>,
}

impl CacheClient {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(CacheClient { framed: FramedStream::new(stream) })
    }

    /// Write `key` with a `value_size`-byte value and an optional TTL.
    /// Returns the version the server assigned.
    pub fn put(
        &mut self,
        key: u64,
        value_size: u32,
        ttl: Option<SimDuration>,
    ) -> io::Result<u64> {
        let ttl = ttl.map_or(0, SimDuration::as_nanos);
        self.framed.send(&Message::PutReq { key, value_size, ttl })?;
        match self.must_recv()? {
            Message::PutResp { key: k, version } if k == key => Ok(version),
            other => Err(unexpected(&other)),
        }
    }

    /// Read `key`, accepting data no staler than `max_staleness`
    /// (`None` = any age).
    pub fn get(
        &mut self,
        key: u64,
        max_staleness: Option<SimDuration>,
    ) -> io::Result<GetOutcome> {
        let bound = max_staleness.map_or(u64::MAX, SimDuration::as_nanos);
        self.framed.send(&Message::GetReq { key, max_staleness: bound })?;
        match self.must_recv()? {
            Message::GetResp { key: k, version, value_size, age, status } if k == key => {
                Ok(GetOutcome { status, version, value_size, age: SimDuration::from_nanos(age) })
            }
            other => Err(unexpected(&other)),
        }
    }

    fn must_recv(&mut self) -> io::Result<Message> {
        self.framed.recv()?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }
}

fn unexpected(msg: &Message) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("unexpected response: {msg:?}"))
}
