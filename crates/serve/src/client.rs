//! Clients for the serving-path protocol: blocking one-request-at-a-time
//! ([`CacheClient`]) and pipelined ([`PipelinedClient`]).
//!
//! Both speak the same id-carrying frames: every request allocates a
//! fresh [`RequestId`] from a per-connection counter and the server
//! echoes it on the response. The blocking client just checks the echo;
//! the pipelined client is *built* on it — with N requests in flight on
//! one connection, the id is what maps each response back to the request
//! (and its submit timestamp) it answers.

use bytes::Bytes;
use fresca_net::payload;
use fresca_net::{FramedStream, GetStatus, Message, NonBlockingFramedStream, PollRecv, RequestId};
use fresca_sim::SimDuration;
use minipoll::{Interest, PollSet};
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::{Duration, Instant};

/// Result of a staleness-bounded read as observed by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetOutcome {
    /// How the server resolved the read.
    pub status: GetStatus,
    /// Version served (0 when nothing was served).
    pub version: u64,
    /// The value served — a refcounted slice of the connection's receive
    /// buffer, decoded without copying (empty when nothing was served).
    pub value: Bytes,
    /// Age of the entry on the server's clock at serving time. For a
    /// refusal this is the age that exceeded the bound.
    pub age: SimDuration,
}

impl GetOutcome {
    /// True when a value was served (fresh or stale-within-bound).
    pub fn is_served(&self) -> bool {
        self.status.is_served()
    }

    /// Size of the value served, in bytes (0 when nothing was served).
    pub fn value_size(&self) -> u32 {
        self.value.len() as u32
    }
}

/// A snapshot of a server's wire-exported counters, as answered to a
/// `StatsReq` probe (see [`CacheClient::server_stats`]). The refetch
/// fields are cumulative counters (probe before/after and diff); the
/// slab fields are instantaneous gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerProbe {
    /// Origin refetches issued so far.
    pub refetches: u64,
    /// Bounded reads coalesced onto an in-flight refetch so far.
    pub refetch_coalesced: u64,
    /// Reads degraded because the origin was unreachable, so far.
    pub origin_errors: u64,
    /// Requests forwarded to the event loop owning their key's shard.
    pub cross_core_forwards: u64,
    /// Live entries across all event-loop-owned slab shards (gauge).
    pub slab_entries: u64,
    /// Allocated slab slots across all owned shards (gauge).
    pub slab_capacity: u64,
    /// The node's membership epoch at probe time (gauge; 0 = solo).
    pub epoch: u64,
    /// Entries installed by inbound key handoff streams so far.
    pub handoff_in: u64,
    /// Entries streamed out to new owners after membership changes.
    pub handoff_out: u64,
}

/// Why a pipelined connection could not be (re)established — the typed
/// form of a client-side connection failure, so callers can tell a
/// transient peer death (reconnect, re-route, retry) from an exhausted
/// retry budget (give up and report).
#[derive(Debug)]
pub enum ConnError {
    /// The established connection died mid-use; requests that were in
    /// flight on it are gone and must be re-submitted after a
    /// reconnect.
    Io(io::Error),
    /// Bounded reconnect gave up: every one of `attempts` connect
    /// attempts failed, `last` being the final error.
    RetriesExhausted {
        /// How many connect attempts were made.
        attempts: u32,
        /// The error the last attempt failed with.
        last: io::Error,
    },
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Io(e) => write!(f, "connection failed: {e}"),
            ConnError::RetriesExhausted { attempts, last } => {
                write!(f, "reconnect gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ConnError {}

impl From<ConnError> for io::Error {
    fn from(e: ConnError) -> io::Error {
        match e {
            ConnError::Io(inner) => inner,
            ConnError::RetriesExhausted { ref last, .. } => {
                io::Error::new(last.kind(), e.to_string())
            }
        }
    }
}

/// Deterministic exponential backoff with jitter for bounded
/// reconnects: attempt `n` sleeps `base · 2ⁿ⁻¹` (capped), scaled by a
/// jitter factor in `[0.5, 1.0)` drawn from a seeded SplitMix stream —
/// the same seed always produces the same retry timing, so chaos runs
/// stay reproducible. Attempt 0 is immediate (a node that just came
/// back should not wait out a full backoff step).
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    max_attempts: u32,
    state: u64,
}

impl Backoff {
    /// A policy sleeping `base · 2ⁿ⁻¹` (jittered, capped at `cap`)
    /// before retry `n`, giving up after `max_attempts` attempts.
    pub fn new(base: Duration, cap: Duration, max_attempts: u32, seed: u64) -> Self {
        Backoff { base, cap, max_attempts: max_attempts.max(1), state: payload::mix(seed) }
    }

    /// How many attempts this policy allows before giving up.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The (jittered) sleep before attempt `attempt` (0-based; attempt
    /// 0 is immediate). Advances the jitter stream.
    pub fn delay(&mut self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let exp = self.base.saturating_mul(1u32 << (attempt - 1).min(16));
        let capped = exp.min(self.cap);
        self.state = payload::mix(self.state);
        let jitter = 0.5 + 0.5 * (self.state >> 11) as f64 / (1u64 << 53) as f64;
        capped.mul_f64(jitter)
    }
}

/// A completed pipelined request, as handed back by
/// [`PipelinedClient::complete`] together with its [`RequestId`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A `GetReq` resolved.
    Get {
        /// Key the read was for.
        key: u64,
        /// How the server resolved it.
        outcome: GetOutcome,
    },
    /// A `PutReq` acknowledged.
    Put {
        /// Key the write was for.
        key: u64,
        /// Version the server assigned (monotone per key).
        version: u64,
    },
}

/// A blocking cache client: one TCP connection, one request in flight.
///
/// Simple and good enough for scripts and tests; load generation and
/// anything latency-sensitive under concurrency wants
/// [`PipelinedClient`].
#[derive(Debug)]
pub struct CacheClient {
    framed: FramedStream<TcpStream>,
    next_id: u64,
}

impl CacheClient {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(CacheClient { framed: FramedStream::new(stream), next_id: 0 })
    }

    fn alloc_id(&mut self) -> RequestId {
        self.next_id += 1;
        RequestId(self.next_id)
    }

    /// Write `key` with the given value bytes and an optional TTL.
    /// Returns the version the server assigned.
    pub fn put(
        &mut self,
        key: u64,
        value: impl Into<Bytes>,
        ttl: Option<SimDuration>,
    ) -> io::Result<u64> {
        let ttl = ttl.map_or(0, SimDuration::as_nanos);
        let id = self.alloc_id();
        self.framed.send(&Message::PutReq { id, key, value: value.into(), ttl })?;
        match self.must_recv()? {
            Message::PutResp { id: rid, key: k, version } if rid == id && k == key => Ok(version),
            other => Err(unexpected(&other)),
        }
    }

    /// Write `key` with the deterministic `len`-byte pattern payload
    /// (see [`fresca_net::payload`]) — what checksum-verifying readers
    /// expect. Returns the version the server assigned.
    pub fn put_pattern(
        &mut self,
        key: u64,
        len: u32,
        ttl: Option<SimDuration>,
    ) -> io::Result<u64> {
        self.put(key, fresca_net::payload::pattern(key, len as usize), ttl)
    }

    /// Read `key`, accepting data no staler than `max_staleness`
    /// (`None` = any age).
    pub fn get(
        &mut self,
        key: u64,
        max_staleness: Option<SimDuration>,
    ) -> io::Result<GetOutcome> {
        let bound = max_staleness.map_or(u64::MAX, SimDuration::as_nanos);
        let id = self.alloc_id();
        self.framed.send(&Message::GetReq { id, key, max_staleness: bound })?;
        match self.must_recv()? {
            Message::GetResp { id: rid, key: k, version, value, age, status }
                if rid == id && k == key =>
            {
                Ok(GetOutcome { status, version, value, age: SimDuration::from_nanos(age) })
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Probe the server's freshness-loop and serving-path counters
    /// (`StatsReq` → `StatsResp`). The refetch counters are zero on a
    /// server running without an origin; `cross_core_forwards` is zero
    /// on a single-event-loop server.
    pub fn server_stats(&mut self) -> io::Result<ServerProbe> {
        self.framed.send(&Message::StatsReq)?;
        match self.must_recv()? {
            Message::StatsResp {
                refetches,
                refetch_coalesced,
                origin_errors,
                cross_core_forwards,
                slab_entries,
                slab_capacity,
                epoch,
                handoff_in,
                handoff_out,
            } => Ok(ServerProbe {
                refetches,
                refetch_coalesced,
                origin_errors,
                cross_core_forwards,
                slab_entries,
                slab_capacity,
                epoch,
                handoff_in,
                handoff_out,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the node for its current membership view (`RingReq` →
    /// `RingUpdate`): the epoch and member list clients rebuild their
    /// rings from after a reconnect or an epoch-change refusal.
    pub fn ring(&mut self) -> io::Result<(u64, Vec<String>)> {
        self.framed.send(&Message::RingReq)?;
        match self.must_recv()? {
            Message::RingUpdate { epoch, members } => Ok((epoch, members)),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the node to add `node` to the ring (`JoinReq`). Answers with
    /// the view after the join — epoch bumped if the member was new,
    /// unchanged if the join was an idempotent retry.
    pub fn join(&mut self, node: &str) -> io::Result<(u64, Vec<String>)> {
        self.framed.send(&Message::JoinReq { node: node.to_string() })?;
        match self.must_recv()? {
            Message::RingUpdate { epoch, members } => Ok((epoch, members)),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the node to remove `node` from the ring (`LeaveReq`).
    /// Answers with the view after the leave, like [`join`](Self::join).
    pub fn leave(&mut self, node: &str) -> io::Result<(u64, Vec<String>)> {
        self.framed.send(&Message::LeaveReq { node: node.to_string() })?;
        match self.must_recv()? {
            Message::RingUpdate { epoch, members } => Ok((epoch, members)),
            other => Err(unexpected(&other)),
        }
    }

    fn must_recv(&mut self) -> io::Result<Message> {
        self.framed.recv()?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }
}

/// A pipelined cache client: one TCP connection, many requests in flight.
///
/// `submit_*` queues a request (flushing opportunistically, never
/// blocking) and returns its [`RequestId`]; completions are collected
/// with [`try_complete`](PipelinedClient::try_complete) (non-blocking),
/// [`complete`](PipelinedClient::complete) (blocking), or
/// [`complete_timeout`](PipelinedClient::complete_timeout). The server
/// answers in submission order on a given connection, but callers should
/// rely only on the echoed id — that is the wire contract.
///
/// ```
/// use fresca_serve::server::{self, ServerConfig};
/// use fresca_serve::{PipelinedClient, Response};
///
/// let handle = server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
/// let mut client = PipelinedClient::connect(handle.addr()).unwrap();
///
/// // Three requests in flight on one connection...
/// let put = client.submit_put(7, fresca_net::payload::pattern(7, 64), None).unwrap();
/// let hit = client.submit_get(7, None).unwrap();
/// let miss = client.submit_get(999, None).unwrap();
///
/// // ...completions come back matched by id.
/// let (id, resp) = client.complete().unwrap();
/// assert_eq!(id, put);
/// assert!(matches!(resp, Response::Put { key: 7, .. }));
/// let (id, resp) = client.complete().unwrap();
/// assert_eq!(id, hit);
/// assert!(matches!(resp, Response::Get { key: 7, outcome } if outcome.is_served()));
/// let (id, _) = client.complete().unwrap();
/// assert_eq!(id, miss);
/// assert_eq!(client.in_flight(), 0);
/// # handle.shutdown();
/// ```
#[derive(Debug)]
pub struct PipelinedClient {
    io: NonBlockingFramedStream<TcpStream>,
    fd: RawFd,
    poll: PollSet,
    next_id: u64,
    in_flight: usize,
    addr: SocketAddr,
}

impl PipelinedClient {
    /// Connect to a server; the socket is put into non-blocking mode.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let addr = stream.peer_addr()?;
        let fd = stream.as_raw_fd();
        Ok(PipelinedClient {
            io: NonBlockingFramedStream::new(stream),
            fd,
            poll: PollSet::new(),
            next_id: 0,
            in_flight: 0,
            addr,
        })
    }

    /// The address this client connected (and reconnects) to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replace a dead connection with a fresh one to the same address,
    /// retrying under `policy`'s bounded exponential backoff. Requests
    /// that were in flight on the old connection are *gone* — the
    /// caller re-submits them (their ids will never be reused: the id
    /// counter survives the reconnect). Returns how many connect
    /// attempts it took; [`ConnError::RetriesExhausted`] when the
    /// budget runs out.
    pub fn reconnect_with_backoff(&mut self, policy: &mut Backoff) -> Result<u32, ConnError> {
        let mut last =
            io::Error::new(io::ErrorKind::NotConnected, "reconnect not yet attempted");
        for attempt in 0..policy.max_attempts() {
            let delay = policy.delay(attempt);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            match Self::connect(self.addr) {
                Ok(fresh) => {
                    let next_id = self.next_id;
                    *self = fresh;
                    // Ids keep climbing across reconnects so a response
                    // matched by id can never be confused with a
                    // pre-reconnect request's.
                    self.next_id = next_id;
                    return Ok(attempt + 1);
                }
                Err(e) => last = e,
            }
        }
        Err(ConnError::RetriesExhausted { attempts: policy.max_attempts(), last })
    }

    fn alloc_id(&mut self) -> RequestId {
        self.next_id += 1;
        RequestId(self.next_id)
    }

    /// Requests submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Queue a staleness-bounded read (`None` = any age) and return the
    /// id its response will carry. Never blocks: bytes the socket does
    /// not accept now are flushed by later submit/complete calls.
    pub fn submit_get(
        &mut self,
        key: u64,
        max_staleness: Option<SimDuration>,
    ) -> io::Result<RequestId> {
        let bound = max_staleness.map_or(u64::MAX, SimDuration::as_nanos);
        let id = self.alloc_id();
        self.io.queue(&Message::GetReq { id, key, max_staleness: bound });
        self.in_flight += 1;
        self.io.flush()?;
        Ok(id)
    }

    /// Queue a write carrying the given value bytes and an optional
    /// TTL; returns the id its acknowledgement will carry. Never blocks.
    /// Large payloads enter the connection's outbound segment queue as
    /// refcounted handles — queuing is O(header), not O(value).
    pub fn submit_put(
        &mut self,
        key: u64,
        value: impl Into<Bytes>,
        ttl: Option<SimDuration>,
    ) -> io::Result<RequestId> {
        let ttl = ttl.map_or(0, SimDuration::as_nanos);
        let id = self.alloc_id();
        self.io.queue(&Message::PutReq { id, key, value: value.into(), ttl });
        self.in_flight += 1;
        self.io.flush()?;
        Ok(id)
    }

    /// Collect one completion if a response is already available, without
    /// blocking. `Ok(None)` means nothing is ready right now (or nothing
    /// is in flight).
    pub fn try_complete(&mut self) -> io::Result<Option<(RequestId, Response)>> {
        if self.in_flight == 0 {
            return Ok(None);
        }
        self.io.flush()?;
        match self.io.poll_recv()? {
            PollRecv::Msg(msg) => {
                let done = decode_response(msg)?;
                self.in_flight -= 1;
                Ok(Some(done))
            }
            PollRecv::WouldBlock => Ok(None),
            PollRecv::Closed => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed with requests in flight",
            )),
        }
    }

    /// Block until one in-flight request completes. Errors with
    /// [`io::ErrorKind::InvalidInput`] when nothing is in flight.
    pub fn complete(&mut self) -> io::Result<(RequestId, Response)> {
        if self.in_flight == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no requests in flight"));
        }
        loop {
            if let Some(done) = self.try_complete()? {
                return Ok(done);
            }
            self.wait(None)?;
        }
    }

    /// Like [`complete`](PipelinedClient::complete), but give up after
    /// `timeout` and return `Ok(None)`. Also returns `Ok(None)`
    /// immediately when nothing is in flight.
    pub fn complete_timeout(
        &mut self,
        timeout: Duration,
    ) -> io::Result<Option<(RequestId, Response)>> {
        if self.in_flight == 0 {
            return Ok(None);
        }
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(done) = self.try_complete()? {
                return Ok(Some(done));
            }
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now) else {
                return Ok(None);
            };
            if remaining.is_zero() {
                return Ok(None);
            }
            self.wait(Some(remaining))?;
        }
    }

    /// Park on `poll(2)` until the socket is readable (or writable, when
    /// unsent request bytes are pending).
    fn wait(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        let mut interest = Interest::READABLE;
        if self.io.wants_write() {
            interest = interest.and(Interest::WRITABLE);
        }
        self.poll.clear();
        self.poll.push(self.fd, interest);
        self.poll.poll(timeout)?;
        Ok(())
    }
}

fn decode_response(msg: Message) -> io::Result<(RequestId, Response)> {
    match msg {
        Message::GetResp { id, key, version, value, age, status } => Ok((
            id,
            Response::Get {
                key,
                outcome: GetOutcome {
                    status,
                    version,
                    value,
                    age: SimDuration::from_nanos(age),
                },
            },
        )),
        Message::PutResp { id, key, version } => Ok((id, Response::Put { key, version })),
        other => Err(unexpected(&other)),
    }
}

fn unexpected(msg: &Message) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("unexpected response: {msg:?}"))
}
