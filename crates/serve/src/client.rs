//! Clients for the serving-path protocol: blocking one-request-at-a-time
//! ([`CacheClient`]) and pipelined ([`PipelinedClient`]).
//!
//! Both speak the same id-carrying frames: every request allocates a
//! fresh [`RequestId`] from a per-connection counter and the server
//! echoes it on the response. The blocking client just checks the echo;
//! the pipelined client is *built* on it — with N requests in flight on
//! one connection, the id is what maps each response back to the request
//! (and its submit timestamp) it answers.

use bytes::Bytes;
use fresca_net::{FramedStream, GetStatus, Message, NonBlockingFramedStream, PollRecv, RequestId};
use fresca_sim::SimDuration;
use minipoll::{Interest, PollSet};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::{Duration, Instant};

/// Result of a staleness-bounded read as observed by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetOutcome {
    /// How the server resolved the read.
    pub status: GetStatus,
    /// Version served (0 when nothing was served).
    pub version: u64,
    /// The value served — a refcounted slice of the connection's receive
    /// buffer, decoded without copying (empty when nothing was served).
    pub value: Bytes,
    /// Age of the entry on the server's clock at serving time. For a
    /// refusal this is the age that exceeded the bound.
    pub age: SimDuration,
}

impl GetOutcome {
    /// True when a value was served (fresh or stale-within-bound).
    pub fn is_served(&self) -> bool {
        self.status.is_served()
    }

    /// Size of the value served, in bytes (0 when nothing was served).
    pub fn value_size(&self) -> u32 {
        self.value.len() as u32
    }
}

/// A snapshot of a server's wire-exported counters, as answered to a
/// `StatsReq` probe (see [`CacheClient::server_stats`]). The refetch
/// fields are cumulative counters (probe before/after and diff); the
/// slab fields are instantaneous gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerProbe {
    /// Origin refetches issued so far.
    pub refetches: u64,
    /// Bounded reads coalesced onto an in-flight refetch so far.
    pub refetch_coalesced: u64,
    /// Reads degraded because the origin was unreachable, so far.
    pub origin_errors: u64,
    /// Requests forwarded to the event loop owning their key's shard.
    pub cross_core_forwards: u64,
    /// Live entries across all event-loop-owned slab shards (gauge).
    pub slab_entries: u64,
    /// Allocated slab slots across all owned shards (gauge).
    pub slab_capacity: u64,
}

/// A completed pipelined request, as handed back by
/// [`PipelinedClient::complete`] together with its [`RequestId`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A `GetReq` resolved.
    Get {
        /// Key the read was for.
        key: u64,
        /// How the server resolved it.
        outcome: GetOutcome,
    },
    /// A `PutReq` acknowledged.
    Put {
        /// Key the write was for.
        key: u64,
        /// Version the server assigned (monotone per key).
        version: u64,
    },
}

/// A blocking cache client: one TCP connection, one request in flight.
///
/// Simple and good enough for scripts and tests; load generation and
/// anything latency-sensitive under concurrency wants
/// [`PipelinedClient`].
#[derive(Debug)]
pub struct CacheClient {
    framed: FramedStream<TcpStream>,
    next_id: u64,
}

impl CacheClient {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(CacheClient { framed: FramedStream::new(stream), next_id: 0 })
    }

    fn alloc_id(&mut self) -> RequestId {
        self.next_id += 1;
        RequestId(self.next_id)
    }

    /// Write `key` with the given value bytes and an optional TTL.
    /// Returns the version the server assigned.
    pub fn put(
        &mut self,
        key: u64,
        value: impl Into<Bytes>,
        ttl: Option<SimDuration>,
    ) -> io::Result<u64> {
        let ttl = ttl.map_or(0, SimDuration::as_nanos);
        let id = self.alloc_id();
        self.framed.send(&Message::PutReq { id, key, value: value.into(), ttl })?;
        match self.must_recv()? {
            Message::PutResp { id: rid, key: k, version } if rid == id && k == key => Ok(version),
            other => Err(unexpected(&other)),
        }
    }

    /// Write `key` with the deterministic `len`-byte pattern payload
    /// (see [`fresca_net::payload`]) — what checksum-verifying readers
    /// expect. Returns the version the server assigned.
    pub fn put_pattern(
        &mut self,
        key: u64,
        len: u32,
        ttl: Option<SimDuration>,
    ) -> io::Result<u64> {
        self.put(key, fresca_net::payload::pattern(key, len as usize), ttl)
    }

    /// Read `key`, accepting data no staler than `max_staleness`
    /// (`None` = any age).
    pub fn get(
        &mut self,
        key: u64,
        max_staleness: Option<SimDuration>,
    ) -> io::Result<GetOutcome> {
        let bound = max_staleness.map_or(u64::MAX, SimDuration::as_nanos);
        let id = self.alloc_id();
        self.framed.send(&Message::GetReq { id, key, max_staleness: bound })?;
        match self.must_recv()? {
            Message::GetResp { id: rid, key: k, version, value, age, status }
                if rid == id && k == key =>
            {
                Ok(GetOutcome { status, version, value, age: SimDuration::from_nanos(age) })
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Probe the server's freshness-loop and serving-path counters
    /// (`StatsReq` → `StatsResp`). The refetch counters are zero on a
    /// server running without an origin; `cross_core_forwards` is zero
    /// on a single-event-loop server.
    pub fn server_stats(&mut self) -> io::Result<ServerProbe> {
        self.framed.send(&Message::StatsReq)?;
        match self.must_recv()? {
            Message::StatsResp {
                refetches,
                refetch_coalesced,
                origin_errors,
                cross_core_forwards,
                slab_entries,
                slab_capacity,
            } => Ok(ServerProbe {
                refetches,
                refetch_coalesced,
                origin_errors,
                cross_core_forwards,
                slab_entries,
                slab_capacity,
            }),
            other => Err(unexpected(&other)),
        }
    }

    fn must_recv(&mut self) -> io::Result<Message> {
        self.framed.recv()?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }
}

/// A pipelined cache client: one TCP connection, many requests in flight.
///
/// `submit_*` queues a request (flushing opportunistically, never
/// blocking) and returns its [`RequestId`]; completions are collected
/// with [`try_complete`](PipelinedClient::try_complete) (non-blocking),
/// [`complete`](PipelinedClient::complete) (blocking), or
/// [`complete_timeout`](PipelinedClient::complete_timeout). The server
/// answers in submission order on a given connection, but callers should
/// rely only on the echoed id — that is the wire contract.
///
/// ```
/// use fresca_serve::server::{self, ServerConfig};
/// use fresca_serve::{PipelinedClient, Response};
///
/// let handle = server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
/// let mut client = PipelinedClient::connect(handle.addr()).unwrap();
///
/// // Three requests in flight on one connection...
/// let put = client.submit_put(7, fresca_net::payload::pattern(7, 64), None).unwrap();
/// let hit = client.submit_get(7, None).unwrap();
/// let miss = client.submit_get(999, None).unwrap();
///
/// // ...completions come back matched by id.
/// let (id, resp) = client.complete().unwrap();
/// assert_eq!(id, put);
/// assert!(matches!(resp, Response::Put { key: 7, .. }));
/// let (id, resp) = client.complete().unwrap();
/// assert_eq!(id, hit);
/// assert!(matches!(resp, Response::Get { key: 7, outcome } if outcome.is_served()));
/// let (id, _) = client.complete().unwrap();
/// assert_eq!(id, miss);
/// assert_eq!(client.in_flight(), 0);
/// # handle.shutdown();
/// ```
#[derive(Debug)]
pub struct PipelinedClient {
    io: NonBlockingFramedStream<TcpStream>,
    fd: RawFd,
    poll: PollSet,
    next_id: u64,
    in_flight: usize,
}

impl PipelinedClient {
    /// Connect to a server; the socket is put into non-blocking mode.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let fd = stream.as_raw_fd();
        Ok(PipelinedClient {
            io: NonBlockingFramedStream::new(stream),
            fd,
            poll: PollSet::new(),
            next_id: 0,
            in_flight: 0,
        })
    }

    fn alloc_id(&mut self) -> RequestId {
        self.next_id += 1;
        RequestId(self.next_id)
    }

    /// Requests submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Queue a staleness-bounded read (`None` = any age) and return the
    /// id its response will carry. Never blocks: bytes the socket does
    /// not accept now are flushed by later submit/complete calls.
    pub fn submit_get(
        &mut self,
        key: u64,
        max_staleness: Option<SimDuration>,
    ) -> io::Result<RequestId> {
        let bound = max_staleness.map_or(u64::MAX, SimDuration::as_nanos);
        let id = self.alloc_id();
        self.io.queue(&Message::GetReq { id, key, max_staleness: bound });
        self.in_flight += 1;
        self.io.flush()?;
        Ok(id)
    }

    /// Queue a write carrying the given value bytes and an optional
    /// TTL; returns the id its acknowledgement will carry. Never blocks.
    /// Large payloads enter the connection's outbound segment queue as
    /// refcounted handles — queuing is O(header), not O(value).
    pub fn submit_put(
        &mut self,
        key: u64,
        value: impl Into<Bytes>,
        ttl: Option<SimDuration>,
    ) -> io::Result<RequestId> {
        let ttl = ttl.map_or(0, SimDuration::as_nanos);
        let id = self.alloc_id();
        self.io.queue(&Message::PutReq { id, key, value: value.into(), ttl });
        self.in_flight += 1;
        self.io.flush()?;
        Ok(id)
    }

    /// Collect one completion if a response is already available, without
    /// blocking. `Ok(None)` means nothing is ready right now (or nothing
    /// is in flight).
    pub fn try_complete(&mut self) -> io::Result<Option<(RequestId, Response)>> {
        if self.in_flight == 0 {
            return Ok(None);
        }
        self.io.flush()?;
        match self.io.poll_recv()? {
            PollRecv::Msg(msg) => {
                let done = decode_response(msg)?;
                self.in_flight -= 1;
                Ok(Some(done))
            }
            PollRecv::WouldBlock => Ok(None),
            PollRecv::Closed => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed with requests in flight",
            )),
        }
    }

    /// Block until one in-flight request completes. Errors with
    /// [`io::ErrorKind::InvalidInput`] when nothing is in flight.
    pub fn complete(&mut self) -> io::Result<(RequestId, Response)> {
        if self.in_flight == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no requests in flight"));
        }
        loop {
            if let Some(done) = self.try_complete()? {
                return Ok(done);
            }
            self.wait(None)?;
        }
    }

    /// Like [`complete`](PipelinedClient::complete), but give up after
    /// `timeout` and return `Ok(None)`. Also returns `Ok(None)`
    /// immediately when nothing is in flight.
    pub fn complete_timeout(
        &mut self,
        timeout: Duration,
    ) -> io::Result<Option<(RequestId, Response)>> {
        if self.in_flight == 0 {
            return Ok(None);
        }
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(done) = self.try_complete()? {
                return Ok(Some(done));
            }
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now) else {
                return Ok(None);
            };
            if remaining.is_zero() {
                return Ok(None);
            }
            self.wait(Some(remaining))?;
        }
    }

    /// Park on `poll(2)` until the socket is readable (or writable, when
    /// unsent request bytes are pending).
    fn wait(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        let mut interest = Interest::READABLE;
        if self.io.wants_write() {
            interest = interest.and(Interest::WRITABLE);
        }
        self.poll.clear();
        self.poll.push(self.fd, interest);
        self.poll.poll(timeout)?;
        Ok(())
    }
}

fn decode_response(msg: Message) -> io::Result<(RequestId, Response)> {
    match msg {
        Message::GetResp { id, key, version, value, age, status } => Ok((
            id,
            Response::Get {
                key,
                outcome: GetOutcome {
                    status,
                    version,
                    value,
                    age: SimDuration::from_nanos(age),
                },
            },
        )),
        Message::PutResp { id, key, version } => Ok((id, Response::Put { key, version })),
        other => Err(unexpected(&other)),
    }
}

fn unexpected(msg: &Message) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("unexpected response: {msg:?}"))
}
