//! `store-push` — run a store node that pushes freshness traffic into a
//! cache cluster, optionally serving the origin refetch endpoint on the
//! same backend state.
//!
//! ```text
//! store-push --addrs 127.0.0.1:7440,127.0.0.1:7441,127.0.0.1:7442
//!            [--policy adaptive|invalidate|update] [--vnodes 128]
//!            [--origin 127.0.0.1:7500]
//!            [--write-rate 2000] [--keys 4096] [--value-size 64]
//!            [--interval-ms 100] [--duration-secs 10] [--seed 42]
//!            [--json BENCH_push.json]
//! ```
//!
//! Applies a uniform pseudo-random write stream (`--write-rate` writes
//! per second over `--keys` distinct keys) to a real `fresca-store`
//! backend, and at the end of every `--interval-ms` staleness interval
//! flushes the dirty-key buffer as per-node `Invalidate`/`Update`
//! batches to the cache nodes owning each key — the ring placement is
//! the same one `loadgen --addrs` and every `ClusterClient` compute, so
//! a pushed key always lands on the node serving it. Each batch blocks
//! for its `Ack`; the run fails (exit 1) on any transport or ack
//! mismatch, so a clean exit certifies every batch was acknowledged.
//!
//! The default policy is `adaptive`: per key, per flush, the backend
//! decides invalidate-vs-update from its live `E[W]` estimate
//! (`E[W]·c_u < c_m + c_i`, the paper's §3.3 rule), fed by the read
//! statistics cache servers report through the origin backchannel. The
//! static `invalidate`/`update` spellings remain as overrides for
//! benchmarking the endpoints of the spectrum.
//!
//! `--origin ADDR` binds the origin refetch endpoint **on the pusher's
//! own backend state**: cache servers started with `serve --origin
//! ADDR` refetch refused/missed keys through it, which (a) serves them
//! the store's current bytes, (b) clears §3.1 invalidation suppression
//! so the next write re-invalidates, and (c) returns their read
//! statistics to steer the adaptive policy. Without `--origin` this
//! binary generates *writes only*, so no refetch ever reaches its store
//! and a key stays suppressed after its first invalidation — the
//! paper's tracking assumption, degenerate for lack of read traffic.
//!
//! `--json <path>` writes the cumulative [`fresca_serve::PushStats`] as
//! machine-readable JSON.

use fresca_serve::cli::arg;
use fresca_serve::push::{PushConfig, PushPolicy, StorePusher};
use std::time::{Duration, Instant};

/// SplitMix64 step: a tiny deterministic key stream, so two runs with
/// one seed push identical batches.
fn next_key(state: &mut u64, keys: u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % keys
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: store-push --addrs a,b,c [--policy adaptive|invalidate|update] \
             [--vnodes 128] [--origin 127.0.0.1:7500] [--write-rate 2000] [--keys 4096] \
             [--value-size 64] [--interval-ms 100] [--duration-secs 10] [--seed 42] \
             [--json BENCH_push.json]"
        );
        return;
    }
    let addrs_s = arg(&args, "--addrs", String::new());
    let policy_s = arg(&args, "--policy", "adaptive".to_string());
    let vnodes: usize = arg(&args, "--vnodes", fresca_serve::ring::DEFAULT_VNODES);
    let origin_addr = arg(&args, "--origin", String::new());
    let write_rate: u64 = arg(&args, "--write-rate", 2000);
    let keys: u64 = arg(&args, "--keys", 4096);
    let value_size: u32 = arg(&args, "--value-size", 64);
    let interval_ms: u64 = arg(&args, "--interval-ms", 100);
    let duration_secs: u64 = arg(&args, "--duration-secs", 10);
    let seed: u64 = arg(&args, "--seed", 42);
    let json_path = arg(&args, "--json", String::new());

    if addrs_s.is_empty() {
        eprintln!("store-push: --addrs is required (comma-separated cache node addresses)");
        std::process::exit(2);
    }
    let addrs: Vec<String> = addrs_s.split(',').map(|s| s.trim().to_string()).collect();
    let Some(policy) = PushPolicy::parse(&policy_s) else {
        eprintln!("store-push: unknown policy {policy_s:?} (try adaptive|invalidate|update)");
        std::process::exit(2);
    };
    if keys == 0 || interval_ms == 0 {
        eprintln!("store-push: --keys and --interval-ms must be positive");
        std::process::exit(2);
    }

    let config = PushConfig { policy, vnodes, ..Default::default() };
    let mut pusher = match StorePusher::connect(&addrs, config) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("store-push: cannot connect to cluster {addrs:?}: {e}");
            std::process::exit(1);
        }
    };
    // The origin listener shares the pusher's backend state: refetches
    // arriving there clear suppression for the very next flush here.
    let origin = if origin_addr.is_empty() {
        None
    } else {
        match fresca_serve::origin::spawn(origin_addr.as_str(), pusher.origin_state()) {
            Ok(handle) => {
                println!("origin endpoint listening on {}", handle.addr());
                Some(handle)
            }
            Err(e) => {
                eprintln!("store-push: cannot bind origin {origin_addr}: {e}");
                std::process::exit(1);
            }
        }
    };
    println!(
        "pushing {} batches to {} nodes every {interval_ms}ms \
         ({write_rate} writes/s over {keys} keys, seed {seed})",
        policy.name(),
        addrs.len(),
    );

    let interval = Duration::from_millis(interval_ms);
    let started = Instant::now();
    let deadline = started + Duration::from_secs(duration_secs.max(1));
    let mut rng = seed;
    let mut interval_end = started + interval;
    // Fractional writes per interval carry over (in units of 1/1000th of
    // a write), so the long-run rate honours --write-rate exactly
    // instead of rounding up every interval.
    let mut owed_milliwrites: u64 = 0;
    loop {
        owed_milliwrites += write_rate * interval_ms;
        for _ in 0..owed_milliwrites / 1000 {
            pusher.write(next_key(&mut rng, keys), value_size);
        }
        owed_milliwrites %= 1000;
        match pusher.flush() {
            Ok(receipts) => {
                let pushed: usize = receipts.iter().map(|r| r.keys).sum();
                let bytes: usize = receipts.iter().map(|r| r.wire_bytes).sum();
                let s = pusher.stats();
                println!(
                    "t={:>6.1}s  {} batches acked, {pushed} keys, {bytes} wire bytes \
                     (decided {} invalidate / {} update)",
                    started.elapsed().as_secs_f64(),
                    receipts.len(),
                    s.decided_invalidate,
                    s.decided_update,
                );
            }
            Err(e) => {
                eprintln!("store-push: flush failed: {e}");
                std::process::exit(1);
            }
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if let Some(sleep) = interval_end.checked_duration_since(now) {
            std::thread::sleep(sleep);
        }
        interval_end += interval;
    }

    let stats = pusher.stats();
    println!(
        "done: {} writes, {} flushes, {} batches ({} acked), {} keys pushed, \
         {} suppressed, {} coalesced, {} wire bytes, \
         decisions {} invalidate / {} update",
        stats.writes,
        stats.flushes,
        stats.batches,
        stats.acks,
        stats.keys_pushed,
        stats.suppressed,
        stats.coalesced,
        stats.push_bytes,
        stats.decided_invalidate,
        stats.decided_update
    );
    if let Some(handle) = origin {
        let fetches = {
            let state = handle.state();
            let s = state.lock();
            (s.fetches(), s.reads_recorded())
        };
        println!("origin: {} fetches served, {} reads recorded", fetches.0, fetches.1);
        handle.shutdown();
    }
    if !json_path.is_empty() {
        let json = serde_json::to_string_pretty(&stats).expect("stats serialize");
        if let Err(e) = std::fs::write(&json_path, json + "\n") {
            eprintln!("store-push: cannot write {json_path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {json_path}");
    }
    if stats.acks != stats.batches {
        eprintln!(
            "store-push: FAILED — {} of {} batches unacknowledged",
            stats.batches - stats.acks,
            stats.batches
        );
        std::process::exit(3);
    }
}
