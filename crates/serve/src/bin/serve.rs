//! `serve` — run the fresca cache server from the command line.
//!
//! ```text
//! serve [--addr 127.0.0.1:7440] [--shards 16] [--capacity-entries 65536]
//!       [--event-loops 2] [--origin 127.0.0.1:7500] [--stats-every 5]
//!       [--pin-threshold 512] [--advertise NAME]
//! ```
//!
//! Binds the address, then prints a serving-counter line every
//! `--stats-every` seconds until killed. `--capacity-entries 0` means
//! unbounded. `--event-loops` sets how many reactor threads connections
//! are multiplexed onto (each one comfortably serves thousands of
//! connections; raise it to use more cores — cache shards are
//! partitioned across the loops and requests route by key). `--origin`
//! points at a store-push node's origin endpoint
//! (`store-push --origin ADDR`): bounded reads that would be refused or
//! missed then refetch through it instead of failing — see
//! `fresca_serve::server`'s module docs. `--pin-threshold` sets the
//! receive-buffer pinning cutoff in bytes (0 disables re-pinning).
//!
//! `--advertise` sets the exact name this node appears under in ring
//! member lists (defaults to the bound address). Every cluster
//! participant must spell a member identically — placement hashes the
//! name — so set it when peers reach this node under a different
//! address than it bound (NAT, 0.0.0.0 binds).
//!
//! **SIGTERM drains before exiting**: no new connections are accepted,
//! but every reply already queued — including requests forwarded
//! cross-core or parked on an origin refetch — is written back before
//! the process exits, and the final stats line is printed. SIGKILL (as
//! the chaos harness sends) is the abrupt-death case; clients observe
//! dropped connections and re-route.

use fresca_cache::{CacheConfig, Capacity, EvictionPolicy};
use fresca_serve::cli::arg;
use fresca_serve::server::{self, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Set from the signal handler; polled by the main loop.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    // A relaxed atomic store is async-signal-safe.
    TERM.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
fn install_sigterm_handler() {
    // The lib crate forbids unsafe code; the binary installs the one
    // process-global hook the lib cannot.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    // SAFETY: `signal` is the C library's handler registration;
    // `on_term` is an `extern "C" fn(i32)` performing only an atomic
    // store, which is async-signal-safe. No Rust state is touched from
    // the handler.
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: serve [--addr 127.0.0.1:7440] [--shards 16] \
             [--capacity-entries 65536] [--event-loops 2] \
             [--origin 127.0.0.1:7500] [--stats-every 5] \
             [--pin-threshold 512] [--advertise NAME]"
        );
        return;
    }
    let addr = arg(&args, "--addr", "127.0.0.1:7440".to_string());
    let shards: usize = arg(&args, "--shards", 16);
    let capacity: usize = arg(&args, "--capacity-entries", 65_536);
    let event_loops: usize = arg(&args, "--event-loops", 2);
    let origin_s = arg(&args, "--origin", String::new());
    let stats_every: u64 = arg(&args, "--stats-every", 5);
    let pin_threshold: usize =
        arg(&args, "--pin-threshold", fresca_net::pin::DEFAULT_PIN_THRESHOLD);
    let advertise = arg(&args, "--advertise", String::new());

    let origin = if origin_s.is_empty() {
        None
    } else {
        match origin_s.parse() {
            Ok(a) => Some(a),
            Err(e) => {
                eprintln!("serve: cannot parse --origin {origin_s:?}: {e}");
                std::process::exit(2);
            }
        }
    };
    let capacity =
        if capacity == 0 { Capacity::Unbounded } else { Capacity::Entries(capacity) };
    let config = ServerConfig {
        cache: CacheConfig { capacity, eviction: EvictionPolicy::Lru },
        shards,
        event_loops,
        origin,
        pin_threshold,
    };
    let advertise = (!advertise.is_empty()).then_some(advertise);
    let handle = match server::spawn_with_identity(&addr, config, advertise) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    install_sigterm_handler();
    println!(
        "serving on {} as {} ({} shards, {:?}, {} event loops{})",
        handle.addr(),
        handle.advertise(),
        shards,
        capacity,
        handle.event_loops(),
        origin.map(|o| format!(", origin {o}")).unwrap_or_default()
    );
    // Poll the TERM flag at a fine grain so a drain starts promptly,
    // printing stats on the coarse --stats-every cadence.
    let tick = Duration::from_millis(100);
    let stats_every = Duration::from_secs(stats_every.max(1));
    let mut last_stats = Instant::now();
    loop {
        std::thread::sleep(tick);
        if TERM.load(Ordering::Relaxed) {
            println!("SIGTERM: draining queued replies and in-flight requests");
            let stats = handle.shutdown_graceful();
            println!("{stats}");
            return;
        }
        if last_stats.elapsed() >= stats_every {
            last_stats = Instant::now();
            println!("{}", handle.stats());
        }
    }
}
