//! `serve` — run the fresca cache server from the command line.
//!
//! ```text
//! serve [--addr 127.0.0.1:7440] [--shards 16] [--capacity-entries 65536]
//!       [--event-loops 2] [--origin 127.0.0.1:7500] [--stats-every 5]
//!       [--pin-threshold 512]
//! ```
//!
//! Binds the address, then prints a serving-counter line every
//! `--stats-every` seconds until killed. `--capacity-entries 0` means
//! unbounded. `--event-loops` sets how many reactor threads connections
//! are multiplexed onto (each one comfortably serves thousands of
//! connections; raise it to use more cores — cache shards are
//! partitioned across the loops and requests route by key). `--origin`
//! points at a store-push node's origin endpoint
//! (`store-push --origin ADDR`): bounded reads that would be refused or
//! missed then refetch through it instead of failing — see
//! `fresca_serve::server`'s module docs. `--pin-threshold` sets the
//! receive-buffer pinning cutoff in bytes (0 disables re-pinning).

use fresca_cache::{CacheConfig, Capacity, EvictionPolicy};
use fresca_serve::cli::arg;
use fresca_serve::server::{self, ServerConfig};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: serve [--addr 127.0.0.1:7440] [--shards 16] \
             [--capacity-entries 65536] [--event-loops 2] \
             [--origin 127.0.0.1:7500] [--stats-every 5] \
             [--pin-threshold 512]"
        );
        return;
    }
    let addr = arg(&args, "--addr", "127.0.0.1:7440".to_string());
    let shards: usize = arg(&args, "--shards", 16);
    let capacity: usize = arg(&args, "--capacity-entries", 65_536);
    let event_loops: usize = arg(&args, "--event-loops", 2);
    let origin_s = arg(&args, "--origin", String::new());
    let stats_every: u64 = arg(&args, "--stats-every", 5);
    let pin_threshold: usize =
        arg(&args, "--pin-threshold", fresca_net::pin::DEFAULT_PIN_THRESHOLD);

    let origin = if origin_s.is_empty() {
        None
    } else {
        match origin_s.parse() {
            Ok(a) => Some(a),
            Err(e) => {
                eprintln!("serve: cannot parse --origin {origin_s:?}: {e}");
                std::process::exit(2);
            }
        }
    };
    let capacity =
        if capacity == 0 { Capacity::Unbounded } else { Capacity::Entries(capacity) };
    let config = ServerConfig {
        cache: CacheConfig { capacity, eviction: EvictionPolicy::Lru },
        shards,
        event_loops,
        origin,
        pin_threshold,
    };
    let handle = match server::spawn(&addr, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "serving on {} ({} shards, {:?}, {} event loops{})",
        handle.addr(),
        shards,
        capacity,
        handle.event_loops(),
        origin.map(|o| format!(", origin {o}")).unwrap_or_default()
    );
    loop {
        std::thread::sleep(Duration::from_secs(stats_every.max(1)));
        println!("{}", handle.stats());
    }
}
