//! `loadgen` — replay a fresca workload against a running `serve`
//! node, or fan it out across a consistent-hash cluster of them.
//!
//! ```text
//! loadgen [--addr 127.0.0.1:7440 | --addrs a,b,c] [--vnodes 128]
//!         [--scenario flash-crowd|diurnal|write-heavy-ticker|
//!                     mixed-tenants|freshness-regimes|push-storm]
//!         [--workload poisson|mix|meta|twitter]
//!         [--seed 42] [--rate 10] [--horizon-secs 1000]
//!         [--mode closed|open] [--conns 4] [--pipeline 16]
//!         [--time-scale 0.001] [--ttl-ms 500] [--bound-ms 0]
//!         [--value-bytes fixed:N|uniform:MIN:MAX|zipf:MAX]
//!         [--json BENCH_serve.json] [--fail-on-violations]
//! ```
//!
//! Two schedule sources:
//!
//! * `--workload` generates one of the paper's workloads and maps it
//!   onto wire operations (`--ttl-ms` attaches a TTL to every put,
//!   `--bound-ms` a staleness bound to every get; 0 disables either;
//!   `--time-scale` rescales the trace's virtual timestamps).
//! * `--scenario` replays a **named scenario** from
//!   [`fresca_workload::scenario`] — a deterministic seeded schedule in
//!   wall time with per-op TTLs and staleness bounds baked in. `--rate`
//!   and `--horizon-secs`, when given, override the scenario's default
//!   rate/duration; `--time-scale` is ignored (scenario timestamps are
//!   already wall time); `--ttl-ms` / `--bound-ms`, when given
//!   *explicitly*, override every op's TTL/bound (0 strips them) — the
//!   lever CI uses to inject staleness violations when testing the
//!   baseline gate. Scenario runs default to open-loop mode, so
//!   measured throughput tracks the scenario's offered rate and stored
//!   baselines stay comparable across machines.
//!
//! The report (text and `--json`) carries the schedule identity —
//! `scenario` name and `seed` — so every run is reproducible from its
//! own output; `baseline check` (the `fresca-bench` gating tool) keys
//! on those fields.
//!
//! Every put carries the deterministic pattern payload for its key, and
//! every served read is FNV-checksummed against it; the report's
//! `checksum_mismatches` must stay zero. `--value-bytes` overrides the
//! schedule's value sizes with a fixed, uniform, or heavy-tailed
//! ("zipf-sized") distribution.
//!
//! With `--addrs a,b,c` the schedule is partitioned by the cluster's
//! consistent-hash ring (every op goes to the node owning its key —
//! the placement a `ClusterClient` and `store-push` also compute) and
//! replayed against all nodes concurrently; the report then carries a
//! per-node breakdown plus the merged aggregate, in closed-loop mode
//! with `--conns` connections *per node*.
//!
//! `--json <path>` additionally writes the report as a machine-readable
//! JSON summary (ops/s, hit ratio, latency percentiles, violation
//! counts, scenario + seed) for tracking the perf trajectory across
//! commits. `--fail-on-violations` exits non-zero when the run observed
//! staleness violations, version anomalies, or checksum mismatches —
//! the CI smoke-test contract.
//!
//! ## Chaos runs
//!
//! `--chaos <schedule>` (with `--addrs` and `--spawn-serve`) runs the
//! cluster under a deterministic kill/restart schedule: loadgen spawns
//! one `serve` child per address, replays the schedule against the
//! live-membership cluster, and mid-run SIGKILLs and respawns victims
//! chosen by the schedule (a pure function of `--seed`), driving the
//! leave/join protocol around each death. The report gains a `chaos`
//! section: per-node availability windows, operations lost, reconnects,
//! and handoff counters. With `--fail-on-violations` the run also fails
//! when any window exceeds `--max-window-secs`, a killed node never
//! recovered, or a restarted node did not converge back to the final
//! epoch with handed-off keys — the CI `chaos-smoke` contract.
//! `--serve-bin` overrides the `serve` binary path (default: next to
//! the running loadgen).

use fresca_serve::chaos::{ChaosSchedule, Supervisor};
use fresca_serve::cli::arg;
use fresca_serve::loadgen::{self, LoadGenConfig, Mode, ValueDist};
use fresca_sim::SimDuration;
use fresca_workload::{
    scenario, MetaLikeConfig, PoissonMixConfig, PoissonZipfConfig, ReplayConfig, ScenarioParams,
    TimedOp, TwitterLikeConfig, WireOp, WorkloadGen,
};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Owns the `serve` child processes of a chaos run: SIGKILL on `kill`,
/// respawn-and-wait on `restart`. Children are killed on drop so an
/// aborted run leaves no strays.
struct ProcSupervisor {
    bin: PathBuf,
    names: Vec<String>,
    children: Vec<Option<Child>>,
}

impl ProcSupervisor {
    /// Spawn one `serve` per name (the name is both the bind address
    /// and the advertised ring identity) and wait until every node
    /// accepts connections.
    fn launch(bin: PathBuf, names: Vec<String>) -> Result<Self, String> {
        let mut sup =
            ProcSupervisor { children: names.iter().map(|_| None).collect(), bin, names };
        for i in 0..sup.names.len() {
            let child = sup.spawn_node(i).map_err(|e| {
                format!("cannot spawn {} for {}: {e}", sup.bin.display(), sup.names[i])
            })?;
            sup.children[i] = Some(child);
        }
        for name in sup.names.clone() {
            if !wait_accepting(&name, Duration::from_secs(10)) {
                return Err(format!("node {name} never started accepting connections"));
            }
        }
        Ok(sup)
    }

    fn spawn_node(&self, i: usize) -> std::io::Result<Child> {
        Command::new(&self.bin)
            .args([
                "--addr",
                &self.names[i],
                "--advertise",
                &self.names[i],
                // Keep child stdout quiet on its own cadence.
                "--stats-every",
                "3600",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
    }
}

/// Poll until `addr` accepts a TCP connection (the server is serving).
fn wait_accepting(addr: &str, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if TcpStream::connect(addr).is_ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

impl Supervisor for ProcSupervisor {
    fn kill(&mut self, node: usize) {
        if let Some(mut child) = self.children.get_mut(node).and_then(Option::take) {
            // Child::kill is SIGKILL: the abrupt-death case, no drain.
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    fn restart(&mut self, node: usize) -> bool {
        let Ok(child) = self.spawn_node(node) else { return false };
        self.children[node] = Some(child);
        wait_accepting(&self.names[node], Duration::from_secs(10))
    }
}

impl Drop for ProcSupervisor {
    fn drop(&mut self) {
        for child in self.children.iter_mut().filter_map(Option::take) {
            let mut child = child;
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        let names = scenario::names().join("|");
        eprintln!(
            "usage: loadgen [--addr 127.0.0.1:7440 | --addrs a,b,c] [--vnodes 128] \
             [--scenario {names}] \
             [--workload poisson|mix|meta|twitter] \
             [--seed 42] [--rate 10] [--horizon-secs 1000] [--mode closed|open] \
             [--conns 4] [--pipeline 16] [--time-scale 0.001] [--ttl-ms 500] [--bound-ms 0] \
             [--value-bytes fixed:N|uniform:MIN:MAX|zipf:MAX] \
             [--json BENCH_serve.json] [--fail-on-violations] \
             [--chaos kill-one|rolling --spawn-serve [--serve-bin PATH] \
              [--max-window-secs 30]]"
        );
        return;
    }
    let has_flag = |name: &str| args.iter().any(|a| a == name);
    let addr_s = arg(&args, "--addr", "127.0.0.1:7440".to_string());
    let addrs_s = arg(&args, "--addrs", String::new());
    let vnodes: usize = arg(&args, "--vnodes", fresca_serve::ring::DEFAULT_VNODES);
    let scenario_s = arg(&args, "--scenario", String::new());
    let workload = arg(&args, "--workload", "poisson".to_string());
    let seed: u64 = arg(&args, "--seed", 42);
    let mode_s = arg(&args, "--mode", String::new());
    let conns: usize = arg(&args, "--conns", 4);
    let pipeline: usize = arg(&args, "--pipeline", 16);
    let ttl_ms: u64 = arg(&args, "--ttl-ms", 500);
    let bound_ms: u64 = arg(&args, "--bound-ms", 0);
    let value_bytes_s = arg(&args, "--value-bytes", String::new());
    let json_path = arg(&args, "--json", String::new());
    let fail_on_violations = has_flag("--fail-on-violations");
    let chaos_s = arg(&args, "--chaos", String::new());
    let spawn_serve = has_flag("--spawn-serve");
    let serve_bin = arg(&args, "--serve-bin", String::new());
    let max_window_secs: f64 = arg(&args, "--max-window-secs", 30.0);

    let value_bytes = if value_bytes_s.is_empty() {
        None
    } else {
        match ValueDist::parse(&value_bytes_s) {
            Some(d) => Some(d),
            None => {
                eprintln!(
                    "loadgen: bad --value-bytes {value_bytes_s:?} \
                     (try fixed:N, uniform:MIN:MAX, or zipf:MAX)"
                );
                std::process::exit(2);
            }
        }
    };

    // Schedule source: a named scenario (wall-time schedule, per-op
    // freshness params baked in) or a generated paper workload mapped
    // through ReplayConfig. Either way: (ops, identity, default mode).
    let (ops, schedule_name, default_mode): (Vec<TimedOp>, String, &str) = if !scenario_s
        .is_empty()
    {
        let Some(def) = scenario::find(&scenario_s) else {
            eprintln!(
                "loadgen: unknown scenario {scenario_s:?} (try {})",
                scenario::names().join("|")
            );
            std::process::exit(2);
        };
        let rate: f64 =
            if has_flag("--rate") { arg(&args, "--rate", 0.0) } else { def.default_rate };
        let duration = if has_flag("--horizon-secs") {
            SimDuration::from_secs(arg(&args, "--horizon-secs", 0))
        } else {
            SimDuration::from_secs(def.default_duration_secs)
        };
        let mut ops = def.build(&ScenarioParams { seed, rate, duration });
        // Explicit --ttl-ms / --bound-ms override the scenario's per-op
        // freshness params (0 strips them). This is the violation-
        // injection lever: `--bound-ms 1` makes a correct server refuse
        // nearly every bounded read, which `baseline check` must catch.
        if has_flag("--ttl-ms") {
            let ttl = (ttl_ms > 0).then(|| SimDuration::from_millis(ttl_ms));
            for op in &mut ops {
                if let WireOp::Put { ttl: t, .. } = &mut op.op {
                    *t = ttl;
                }
            }
        }
        if has_flag("--bound-ms") {
            let bound = (bound_ms > 0).then(|| SimDuration::from_millis(bound_ms));
            for op in &mut ops {
                if let WireOp::Get { max_staleness, .. } = &mut op.op {
                    *max_staleness = bound;
                }
            }
        }
        (ops, def.name.to_string(), "open")
    } else {
        let rate: f64 = arg(&args, "--rate", 10.0);
        let horizon = SimDuration::from_secs(arg(&args, "--horizon-secs", 1000));
        let time_scale: f64 = arg(&args, "--time-scale", 0.001);
        let trace = match workload.as_str() {
            "poisson" => {
                PoissonZipfConfig { rate, horizon, ..Default::default() }.generate(seed)
            }
            "mix" => PoissonMixConfig { rate, horizon, ..Default::default() }.generate(seed),
            "meta" => MetaLikeConfig { rate, horizon, ..Default::default() }.generate(seed),
            "twitter" => {
                TwitterLikeConfig { rate, horizon, ..Default::default() }.generate(seed)
            }
            other => {
                eprintln!("loadgen: unknown workload {other:?} (try poisson|mix|meta|twitter)");
                std::process::exit(2);
            }
        };
        let replay = ReplayConfig {
            ttl: (ttl_ms > 0).then(|| SimDuration::from_millis(ttl_ms)),
            max_staleness: (bound_ms > 0).then(|| SimDuration::from_millis(bound_ms)),
            time_scale,
        };
        let name = trace.meta().generator.clone();
        (replay.map_trace(&trace), name, "closed")
    };

    let mode = match if mode_s.is_empty() { default_mode } else { mode_s.as_str() } {
        "closed" => Mode::Closed { connections: conns.max(1) },
        "open" => Mode::Open,
        other => {
            eprintln!("loadgen: unknown mode {other:?} (try closed|open)");
            std::process::exit(2);
        }
    };
    let mode_name = match mode {
        Mode::Closed { .. } => "closed",
        Mode::Open => "open",
    };
    let resolve = |s: &str| match s.to_socket_addrs().ok().and_then(|mut it| it.next()) {
        Some(a) => a,
        None => {
            eprintln!("loadgen: cannot resolve {s}");
            std::process::exit(2);
        }
    };
    let config = LoadGenConfig { mode, pipeline, value_bytes };

    // Cluster fan-out (`--addrs`) or single node (`--addr`). Both paths
    // converge on (aggregate report, optional per-node breakdown).
    let (report, cluster) = if !addrs_s.is_empty() {
        let nodes: Vec<(String, SocketAddr)> = addrs_s
            .split(',')
            .map(|s| {
                let name = s.trim().to_string();
                let addr = resolve(&name);
                (name, addr)
            })
            .collect();
        if !chaos_s.is_empty() {
            // Chaos: this process must own the servers to SIGKILL them.
            if !spawn_serve {
                eprintln!("loadgen: --chaos requires --spawn-serve (loadgen must own the serve processes it kills)");
                std::process::exit(2);
            }
            // The schedule spans the replay's wall-clock duration.
            let duration = ops
                .last()
                .map(|op| Duration::from_nanos(op.at.as_nanos()))
                .unwrap_or(Duration::ZERO);
            let Some(schedule) =
                ChaosSchedule::generate(&chaos_s, seed, duration, nodes.len())
            else {
                eprintln!(
                    "loadgen: bad --chaos {chaos_s:?} for {} nodes (try {})",
                    nodes.len(),
                    fresca_serve::chaos::SCHEDULES.join("|")
                );
                std::process::exit(2);
            };
            let bin = if serve_bin.is_empty() {
                // Default: the serve binary next to the running loadgen.
                std::env::current_exe()
                    .ok()
                    .and_then(|p| p.parent().map(|d| d.join("serve")))
                    .unwrap_or_else(|| PathBuf::from("serve"))
            } else {
                PathBuf::from(&serve_bin)
            };
            let names: Vec<String> = nodes.iter().map(|(n, _)| n.clone()).collect();
            let mut sup = match ProcSupervisor::launch(bin, names) {
                Ok(sup) => sup,
                Err(e) => {
                    eprintln!("loadgen: {e}");
                    std::process::exit(1);
                }
            };
            println!(
                "replaying {} ops of {schedule_name} (seed {seed}) across {} nodes under \
                 chaos schedule {chaos_s} ({} events over {:.1}s)",
                ops.len(),
                nodes.len(),
                schedule.events.len(),
                duration.as_secs_f64(),
            );
            match loadgen::run_cluster_chaos(
                &nodes, &ops, &config, vnodes, &schedule, &mut sup, seed,
            ) {
                Ok(mut cluster) => {
                    cluster.set_identity(&format!("{schedule_name}-chaos"), seed);
                    (cluster.aggregate.clone(), Some(cluster))
                }
                Err(e) => {
                    eprintln!("loadgen: {e}");
                    std::process::exit(1);
                }
            }
        } else {
            println!(
                "replaying {} ops of {schedule_name} (seed {seed}) across {} nodes [{mode_name}, \
                 pipeline {pipeline}, {vnodes} vnodes]",
                ops.len(),
                nodes.len(),
            );
            match loadgen::run_cluster(&nodes, &ops, &config, vnodes) {
                Ok(mut cluster) => {
                    // A fanned-out run is a different experiment than a
                    // single-node replay of the same schedule — suffix the
                    // identity so baseline gating never compares across the
                    // two shapes.
                    cluster.set_identity(&format!("{schedule_name}-cluster"), seed);
                    (cluster.aggregate.clone(), Some(cluster))
                }
                Err(e) => {
                    eprintln!("loadgen: {e}");
                    std::process::exit(1);
                }
            }
        }
    } else {
        let addr = resolve(&addr_s);
        println!(
            "replaying {} ops of {schedule_name} (seed {seed}) against {addr} [{mode_name}, \
             pipeline {pipeline}]",
            ops.len(),
        );
        match loadgen::run(addr, &ops, &config) {
            Ok(mut report) => {
                report.set_identity(&schedule_name, seed);
                (report, None)
            }
            Err(e) => {
                eprintln!("loadgen: {e}");
                std::process::exit(1);
            }
        }
    };
    match &cluster {
        Some(cluster) => print!("{cluster}"),
        None => print!("{report}"),
    }
    if !json_path.is_empty() {
        // Cluster runs serialize the full per-node breakdown; single-node
        // runs keep the flat report shape downstream tooling expects.
        let json = match &cluster {
            Some(cluster) => serde_json::to_string_pretty(cluster),
            None => serde_json::to_string_pretty(&report),
        }
        .expect("report serializes");
        if let Err(e) = std::fs::write(&json_path, json + "\n") {
            eprintln!("loadgen: cannot write {json_path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {json_path}");
    }
    if fail_on_violations && !report.is_clean() {
        eprintln!(
            "loadgen: FAILED — {} staleness violations, {} version anomalies, \
             {} checksum mismatches",
            report.staleness_violations, report.version_anomalies, report.checksum_mismatches
        );
        std::process::exit(3);
    }
    // Chaos gates: every killed node must come back inside the window
    // bound, converged to the final epoch, with keys handed back to it.
    if fail_on_violations {
        if let Some(chaos) = cluster.as_ref().and_then(|c| c.chaos.as_ref()) {
            let bound = Duration::from_secs_f64(max_window_secs.max(0.0));
            if !chaos.windows_bounded(bound) {
                eprintln!(
                    "loadgen: FAILED — an unavailability window exceeded {max_window_secs}s \
                     (or a killed node never recovered)"
                );
                std::process::exit(3);
            }
            for w in &chaos.windows {
                if w.killed_at_secs < 0.0 || w.restarted_at_secs < 0.0 {
                    continue;
                }
                if w.epoch != chaos.final_epoch {
                    eprintln!(
                        "loadgen: FAILED — restarted node {} is at epoch {} (cluster is at {})",
                        w.node, w.epoch, chaos.final_epoch
                    );
                    std::process::exit(3);
                }
                if w.handoff_in == 0 {
                    eprintln!(
                        "loadgen: FAILED — restarted node {} received no handed-off keys; \
                         ownership was not restored",
                        w.node
                    );
                    std::process::exit(3);
                }
            }
        }
    }
}
