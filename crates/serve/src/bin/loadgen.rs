//! `loadgen` — replay a fresca workload against a running `serve`
//! node, or fan it out across a consistent-hash cluster of them.
//!
//! ```text
//! loadgen [--addr 127.0.0.1:7440 | --addrs a,b,c] [--vnodes 128]
//!         [--scenario flash-crowd|diurnal|write-heavy-ticker|
//!                     mixed-tenants|freshness-regimes|push-storm]
//!         [--workload poisson|mix|meta|twitter]
//!         [--seed 42] [--rate 10] [--horizon-secs 1000]
//!         [--mode closed|open] [--conns 4] [--pipeline 16]
//!         [--time-scale 0.001] [--ttl-ms 500] [--bound-ms 0]
//!         [--value-bytes fixed:N|uniform:MIN:MAX|zipf:MAX]
//!         [--json BENCH_serve.json] [--fail-on-violations]
//! ```
//!
//! Two schedule sources:
//!
//! * `--workload` generates one of the paper's workloads and maps it
//!   onto wire operations (`--ttl-ms` attaches a TTL to every put,
//!   `--bound-ms` a staleness bound to every get; 0 disables either;
//!   `--time-scale` rescales the trace's virtual timestamps).
//! * `--scenario` replays a **named scenario** from
//!   [`fresca_workload::scenario`] — a deterministic seeded schedule in
//!   wall time with per-op TTLs and staleness bounds baked in. `--rate`
//!   and `--horizon-secs`, when given, override the scenario's default
//!   rate/duration; `--time-scale` is ignored (scenario timestamps are
//!   already wall time); `--ttl-ms` / `--bound-ms`, when given
//!   *explicitly*, override every op's TTL/bound (0 strips them) — the
//!   lever CI uses to inject staleness violations when testing the
//!   baseline gate. Scenario runs default to open-loop mode, so
//!   measured throughput tracks the scenario's offered rate and stored
//!   baselines stay comparable across machines.
//!
//! The report (text and `--json`) carries the schedule identity —
//! `scenario` name and `seed` — so every run is reproducible from its
//! own output; `baseline check` (the `fresca-bench` gating tool) keys
//! on those fields.
//!
//! Every put carries the deterministic pattern payload for its key, and
//! every served read is FNV-checksummed against it; the report's
//! `checksum_mismatches` must stay zero. `--value-bytes` overrides the
//! schedule's value sizes with a fixed, uniform, or heavy-tailed
//! ("zipf-sized") distribution.
//!
//! With `--addrs a,b,c` the schedule is partitioned by the cluster's
//! consistent-hash ring (every op goes to the node owning its key —
//! the placement a `ClusterClient` and `store-push` also compute) and
//! replayed against all nodes concurrently; the report then carries a
//! per-node breakdown plus the merged aggregate, in closed-loop mode
//! with `--conns` connections *per node*.
//!
//! `--json <path>` additionally writes the report as a machine-readable
//! JSON summary (ops/s, hit ratio, latency percentiles, violation
//! counts, scenario + seed) for tracking the perf trajectory across
//! commits. `--fail-on-violations` exits non-zero when the run observed
//! staleness violations, version anomalies, or checksum mismatches —
//! the CI smoke-test contract.

use fresca_serve::cli::arg;
use fresca_serve::loadgen::{self, LoadGenConfig, Mode, ValueDist};
use fresca_sim::SimDuration;
use fresca_workload::{
    scenario, MetaLikeConfig, PoissonMixConfig, PoissonZipfConfig, ReplayConfig, ScenarioParams,
    TimedOp, TwitterLikeConfig, WireOp, WorkloadGen,
};
use std::net::{SocketAddr, ToSocketAddrs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        let names = scenario::names().join("|");
        eprintln!(
            "usage: loadgen [--addr 127.0.0.1:7440 | --addrs a,b,c] [--vnodes 128] \
             [--scenario {names}] \
             [--workload poisson|mix|meta|twitter] \
             [--seed 42] [--rate 10] [--horizon-secs 1000] [--mode closed|open] \
             [--conns 4] [--pipeline 16] [--time-scale 0.001] [--ttl-ms 500] [--bound-ms 0] \
             [--value-bytes fixed:N|uniform:MIN:MAX|zipf:MAX] \
             [--json BENCH_serve.json] [--fail-on-violations]"
        );
        return;
    }
    let has_flag = |name: &str| args.iter().any(|a| a == name);
    let addr_s = arg(&args, "--addr", "127.0.0.1:7440".to_string());
    let addrs_s = arg(&args, "--addrs", String::new());
    let vnodes: usize = arg(&args, "--vnodes", fresca_serve::ring::DEFAULT_VNODES);
    let scenario_s = arg(&args, "--scenario", String::new());
    let workload = arg(&args, "--workload", "poisson".to_string());
    let seed: u64 = arg(&args, "--seed", 42);
    let mode_s = arg(&args, "--mode", String::new());
    let conns: usize = arg(&args, "--conns", 4);
    let pipeline: usize = arg(&args, "--pipeline", 16);
    let ttl_ms: u64 = arg(&args, "--ttl-ms", 500);
    let bound_ms: u64 = arg(&args, "--bound-ms", 0);
    let value_bytes_s = arg(&args, "--value-bytes", String::new());
    let json_path = arg(&args, "--json", String::new());
    let fail_on_violations = has_flag("--fail-on-violations");

    let value_bytes = if value_bytes_s.is_empty() {
        None
    } else {
        match ValueDist::parse(&value_bytes_s) {
            Some(d) => Some(d),
            None => {
                eprintln!(
                    "loadgen: bad --value-bytes {value_bytes_s:?} \
                     (try fixed:N, uniform:MIN:MAX, or zipf:MAX)"
                );
                std::process::exit(2);
            }
        }
    };

    // Schedule source: a named scenario (wall-time schedule, per-op
    // freshness params baked in) or a generated paper workload mapped
    // through ReplayConfig. Either way: (ops, identity, default mode).
    let (ops, schedule_name, default_mode): (Vec<TimedOp>, String, &str) = if !scenario_s
        .is_empty()
    {
        let Some(def) = scenario::find(&scenario_s) else {
            eprintln!(
                "loadgen: unknown scenario {scenario_s:?} (try {})",
                scenario::names().join("|")
            );
            std::process::exit(2);
        };
        let rate: f64 =
            if has_flag("--rate") { arg(&args, "--rate", 0.0) } else { def.default_rate };
        let duration = if has_flag("--horizon-secs") {
            SimDuration::from_secs(arg(&args, "--horizon-secs", 0))
        } else {
            SimDuration::from_secs(def.default_duration_secs)
        };
        let mut ops = def.build(&ScenarioParams { seed, rate, duration });
        // Explicit --ttl-ms / --bound-ms override the scenario's per-op
        // freshness params (0 strips them). This is the violation-
        // injection lever: `--bound-ms 1` makes a correct server refuse
        // nearly every bounded read, which `baseline check` must catch.
        if has_flag("--ttl-ms") {
            let ttl = (ttl_ms > 0).then(|| SimDuration::from_millis(ttl_ms));
            for op in &mut ops {
                if let WireOp::Put { ttl: t, .. } = &mut op.op {
                    *t = ttl;
                }
            }
        }
        if has_flag("--bound-ms") {
            let bound = (bound_ms > 0).then(|| SimDuration::from_millis(bound_ms));
            for op in &mut ops {
                if let WireOp::Get { max_staleness, .. } = &mut op.op {
                    *max_staleness = bound;
                }
            }
        }
        (ops, def.name.to_string(), "open")
    } else {
        let rate: f64 = arg(&args, "--rate", 10.0);
        let horizon = SimDuration::from_secs(arg(&args, "--horizon-secs", 1000));
        let time_scale: f64 = arg(&args, "--time-scale", 0.001);
        let trace = match workload.as_str() {
            "poisson" => {
                PoissonZipfConfig { rate, horizon, ..Default::default() }.generate(seed)
            }
            "mix" => PoissonMixConfig { rate, horizon, ..Default::default() }.generate(seed),
            "meta" => MetaLikeConfig { rate, horizon, ..Default::default() }.generate(seed),
            "twitter" => {
                TwitterLikeConfig { rate, horizon, ..Default::default() }.generate(seed)
            }
            other => {
                eprintln!("loadgen: unknown workload {other:?} (try poisson|mix|meta|twitter)");
                std::process::exit(2);
            }
        };
        let replay = ReplayConfig {
            ttl: (ttl_ms > 0).then(|| SimDuration::from_millis(ttl_ms)),
            max_staleness: (bound_ms > 0).then(|| SimDuration::from_millis(bound_ms)),
            time_scale,
        };
        let name = trace.meta().generator.clone();
        (replay.map_trace(&trace), name, "closed")
    };

    let mode = match if mode_s.is_empty() { default_mode } else { mode_s.as_str() } {
        "closed" => Mode::Closed { connections: conns.max(1) },
        "open" => Mode::Open,
        other => {
            eprintln!("loadgen: unknown mode {other:?} (try closed|open)");
            std::process::exit(2);
        }
    };
    let mode_name = match mode {
        Mode::Closed { .. } => "closed",
        Mode::Open => "open",
    };
    let resolve = |s: &str| match s.to_socket_addrs().ok().and_then(|mut it| it.next()) {
        Some(a) => a,
        None => {
            eprintln!("loadgen: cannot resolve {s}");
            std::process::exit(2);
        }
    };
    let config = LoadGenConfig { mode, pipeline, value_bytes };

    // Cluster fan-out (`--addrs`) or single node (`--addr`). Both paths
    // converge on (aggregate report, optional per-node breakdown).
    let (report, cluster) = if !addrs_s.is_empty() {
        let nodes: Vec<(String, SocketAddr)> = addrs_s
            .split(',')
            .map(|s| {
                let name = s.trim().to_string();
                let addr = resolve(&name);
                (name, addr)
            })
            .collect();
        println!(
            "replaying {} ops of {schedule_name} (seed {seed}) across {} nodes [{mode_name}, \
             pipeline {pipeline}, {vnodes} vnodes]",
            ops.len(),
            nodes.len(),
        );
        match loadgen::run_cluster(&nodes, &ops, &config, vnodes) {
            Ok(mut cluster) => {
                // A fanned-out run is a different experiment than a
                // single-node replay of the same schedule — suffix the
                // identity so baseline gating never compares across the
                // two shapes.
                cluster.set_identity(&format!("{schedule_name}-cluster"), seed);
                (cluster.aggregate.clone(), Some(cluster))
            }
            Err(e) => {
                eprintln!("loadgen: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let addr = resolve(&addr_s);
        println!(
            "replaying {} ops of {schedule_name} (seed {seed}) against {addr} [{mode_name}, \
             pipeline {pipeline}]",
            ops.len(),
        );
        match loadgen::run(addr, &ops, &config) {
            Ok(mut report) => {
                report.set_identity(&schedule_name, seed);
                (report, None)
            }
            Err(e) => {
                eprintln!("loadgen: {e}");
                std::process::exit(1);
            }
        }
    };
    match &cluster {
        Some(cluster) => print!("{cluster}"),
        None => print!("{report}"),
    }
    if !json_path.is_empty() {
        // Cluster runs serialize the full per-node breakdown; single-node
        // runs keep the flat report shape downstream tooling expects.
        let json = match &cluster {
            Some(cluster) => serde_json::to_string_pretty(cluster),
            None => serde_json::to_string_pretty(&report),
        }
        .expect("report serializes");
        if let Err(e) = std::fs::write(&json_path, json + "\n") {
            eprintln!("loadgen: cannot write {json_path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {json_path}");
    }
    if fail_on_violations && !report.is_clean() {
        eprintln!(
            "loadgen: FAILED — {} staleness violations, {} version anomalies, \
             {} checksum mismatches",
            report.staleness_violations, report.version_anomalies, report.checksum_mismatches
        );
        std::process::exit(3);
    }
}
