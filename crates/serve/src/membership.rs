//! Versioned cluster membership: the epoch-stamped member list every
//! node, client, and store-push participant routes by.
//!
//! Membership is a tiny replicated state machine with one rule: **adopt
//! a `RingUpdate` iff its epoch is strictly newer than yours**. Epochs
//! are totally ordered `u64`s; each successful join or leave bumps the
//! epoch by one on the node that processed it, and the new
//! `(epoch, members)` pair is broadcast to every other member. Because
//! adoption is monotone, broadcasts may arrive duplicated, reordered,
//! or not at all without ever moving a node backwards — a node that
//! missed an update converges the moment it sees any newer one (or is
//! asked for its view via `RingReq` and answers with what it has).
//!
//! Epoch 0 is the **solo** state: the empty member list, meaning "I am
//! not part of a named ring — serve everything". A single-node server
//! never leaves epoch 0 and behaves exactly as before membership
//! existed; the cluster machinery only engages once a `JoinReq` or
//! `RingUpdate` installs a non-empty list.
//!
//! Join and leave are idempotent: joining a member already present or
//! removing one already absent changes nothing and does **not** bump
//! the epoch — the caller is answered with the current view, so a
//! retried `JoinReq` (the operator's client reconnected mid-reply)
//! cannot split the cluster into gratuitous epochs.

use crate::ring::HashRing;

/// The epoch-stamped member list. See the module docs for the adoption
/// and bump rules; [`HashRing`] placement is derived from it on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    /// Totally ordered view version; higher wins.
    pub epoch: u64,
    /// Ring member names (advertised addresses), in the order the ring
    /// hashes them. Every participant must spell them identically.
    pub members: Vec<String>,
}

impl Membership {
    /// The solo state: epoch 0, no named members — this node serves
    /// every key and the cluster machinery stays disengaged.
    pub fn solo() -> Self {
        Membership { epoch: 0, members: Vec::new() }
    }

    /// Adopt `(epoch, members)` iff it is strictly newer than the
    /// current view. Returns `true` when the view changed.
    pub fn adopt(&mut self, epoch: u64, members: &[String]) -> bool {
        if epoch <= self.epoch {
            return false;
        }
        self.epoch = epoch;
        self.members = members.to_vec();
        true
    }

    /// Process a join: if `node` is not yet a member, append it, bump
    /// the epoch, and return the new view for broadcasting. `None`
    /// means the join was an idempotent no-op (already a member).
    pub fn apply_join(&mut self, node: &str) -> Option<(u64, Vec<String>)> {
        if self.members.iter().any(|m| m == node) {
            return None;
        }
        self.members.push(node.to_string());
        self.epoch += 1;
        Some((self.epoch, self.members.clone()))
    }

    /// Process a leave: if `node` is a member, remove it, bump the
    /// epoch, and return the new view for broadcasting. `None` means
    /// the leave was an idempotent no-op (not a member).
    pub fn apply_leave(&mut self, node: &str) -> Option<(u64, Vec<String>)> {
        let before = self.members.len();
        self.members.retain(|m| m != node);
        if self.members.len() == before {
            return None;
        }
        self.epoch += 1;
        Some((self.epoch, self.members.clone()))
    }

    /// True when `node` is in the current member list.
    pub fn contains(&self, node: &str) -> bool {
        self.members.iter().any(|m| m == node)
    }

    /// The consistent-hash ring this view places keys on, or `None` in
    /// the solo state (no named members — the local node owns all keys)
    /// or if the member list is somehow invalid (duplicates).
    pub fn ring(&self, vnodes: usize) -> Option<HashRing> {
        if self.members.is_empty() {
            return None;
        }
        let names: Vec<&str> = self.members.iter().map(String::as_str).collect();
        HashRing::try_from_members(vnodes, &names).ok()
    }
}

impl Default for Membership {
    fn default() -> Self {
        Membership::solo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn solo_is_epoch_zero_and_ringless() {
        let solo = Membership::solo();
        assert_eq!(solo.epoch, 0);
        assert!(solo.members.is_empty());
        assert!(solo.ring(8).is_none(), "solo state derives no ring");
        assert_eq!(Membership::default(), solo);
    }

    #[test]
    fn adopt_only_strictly_newer_epochs() {
        let mut view = Membership::solo();
        assert!(view.adopt(3, &m(&["a:1", "b:2"])));
        assert_eq!(view.epoch, 3);
        // Same epoch: refused, even with a different list.
        assert!(!view.adopt(3, &m(&["c:3"])));
        assert_eq!(view.members, m(&["a:1", "b:2"]));
        // Older epoch: refused.
        assert!(!view.adopt(2, &m(&["c:3"])));
        // Newer: adopted wholesale.
        assert!(view.adopt(10, &m(&["c:3"])));
        assert_eq!((view.epoch, view.members.clone()), (10, m(&["c:3"])));
    }

    #[test]
    fn join_and_leave_bump_epoch_and_are_idempotent() {
        let mut view = Membership::solo();
        let (e1, list1) = view.apply_join("a:1").expect("first join changes the view");
        assert_eq!((e1, list1), (1, m(&["a:1"])));
        // Idempotent: joining again is a no-op at the same epoch.
        assert!(view.apply_join("a:1").is_none());
        assert_eq!(view.epoch, 1);
        let (e2, _) = view.apply_join("b:2").expect("second member joins");
        assert_eq!(e2, 2);
        assert!(view.contains("a:1") && view.contains("b:2"));
        // Leave removes and bumps; leaving a stranger is a no-op.
        assert!(view.apply_leave("c:3").is_none());
        assert_eq!(view.epoch, 2);
        let (e3, list3) = view.apply_leave("a:1").expect("member leaves");
        assert_eq!((e3, list3), (3, m(&["b:2"])));
        assert!(!view.contains("a:1"));
    }

    #[test]
    fn ring_derivation_matches_member_list() {
        let mut view = Membership::solo();
        view.adopt(1, &m(&["a:1", "b:2", "c:3"]));
        let ring = view.ring(64).expect("three members make a ring");
        assert_eq!(ring.nodes(), ["a:1", "b:2", "c:3"]);
        // Placement agrees with a ring built directly from the names.
        let direct = HashRing::try_from_members(64, &["a:1", "b:2", "c:3"]).unwrap();
        for key in 0..256u64 {
            assert_eq!(ring.node_for(key), direct.node_for(key));
        }
    }
}
