//! The event-driven, thread-per-core TCP cache server.
//!
//! A small poll-based reactor replaces the original thread-per-connection
//! design: one blocking accept thread hands sockets to a configurable
//! number of **event-loop threads**, each of which multiplexes all of its
//! connections over non-blocking I/O with a [`minipoll::PollSet`] (a
//! vendored `poll(2)` wrapper — no external runtime). One event-loop
//! thread comfortably sustains thousands of concurrent connections; the
//! thread count scales service capacity across cores, not connection
//! count.
//!
//! ## Thread-per-core ownership
//!
//! Cache shards are not shared behind locks — they are **partitioned
//! across the event loops at startup and owned exclusively by one
//! loop** for the server's lifetime. Shard `s` (of `S`, rounded up to a
//! power of two) belongs to loop `s % L`; each loop keeps its owned
//! shards in a plain `Vec<SlabCache>` (slab-backed storage with an
//! intrusive LRU — see [`fresca_cache::slab`]) and mutates them through
//! `&mut` with **no locking at all**.
//!
//! Requests are therefore routed *by key*, not just by connection. A
//! request arriving on its key's owner loop is served inline, straight
//! against the owned shard. A request for a shard owned by another loop
//! is **forwarded**: the home loop stages a `CoreMsg::Op` into a
//! per-destination outbox, flushes the batch into the owner's inbox at
//! end of tick (one mutex append + one self-pipe wake byte per
//! destination — the same wakeup channel the accept thread uses), and
//! the request parks exactly like an origin refetch does. The owner
//! serves it against its shard and stages a completion message carrying
//! the fully-formed reply back to the home loop, which queues it on the
//! original connection, matched by `(slot, token)` so a recycled slot
//! can never receive a stranger's reply. The reactor never blocks on a
//! forward; counted in `cross_core_forwards`.
//!
//! Because every key has exactly one owner thread, multi-step operations
//! that used to need a shard lock ("allocate a version, then insert")
//! are atomic by construction, and per-key operation order is preserved
//! end-to-end: a connection's requests are decoded in order, same-key
//! operations always route to the same owner, and the inbox queues are
//! FIFO.
//!
//! Per connection the reactor keeps a [`NonBlockingFramedStream`]: reads
//! accumulate into the streaming codec until frames complete, responses
//! queue into an outbound buffer and drain as the socket accepts them, so
//! a slow reader never blocks the loop. Requests are processed in arrival
//! order per connection and each response echoes its request's
//! [`fresca_net::RequestId`], which is what lets clients pipeline many
//! requests on one connection and match responses by id (forwarded
//! requests may complete out of order with respect to later local ones,
//! exactly like parked refetches always could).
//!
//! Freshness is enforced *at the serving boundary*, per the paper's
//! argument: a `PutReq` installs its per-key TTL, and a `GetReq`'s
//! max-staleness bound decides between served-fresh, served-stale,
//! refused, and miss — the decision travels back on the wire as a
//! [`GetStatus`] so the client can count staleness violations end-to-end.
//!
//! Small values decoded from large receive chunks are **re-pinned**
//! before they are cached ([`fresca_net::pin::repin_small`], threshold
//! [`ServerConfig::pin_threshold`]): a 100-byte payload sliced out of a
//! 64 KiB read would otherwise hold the whole chunk alive for as long
//! as the entry stays cached.
//!
//! The same socket also accepts the **store path**: a store-push node
//! (see [`crate::push`]) sends batched `Invalidate { seq, keys }` /
//! `Update { seq, items }` frames. The receiving loop applies the keys
//! it owns directly, splits the rest into per-owner sub-batches
//! forwarded like any other cross-core op, and answers `Ack { seq }`
//! once every sub-batch completion has come back — the paper's
//! write-triggered freshness pipeline running against a real cache node
//! instead of the simulator.
//!
//! ## The refetch path
//!
//! With [`ServerConfig::origin`] set, a bounded read that would come
//! back `RefusedStale` or `Miss` does not answer at all — the **owner
//! loop** parks the request on its in-flight-refetch table
//! ([`fresca_cache::refetch::RefetchTable`]) and asks the origin for
//! the key over a per-event-loop non-blocking connection. Concurrent
//! readers of the same key coalesce onto the one in-flight fetch
//! (dogpile guard — and because a key has one owner, coalescing is now
//! global, not per-loop); when the `FetchResp` arrives the entry is
//! installed like a put and every parked reader is answered `Fresh` at
//! age 0 — directly for readers whose connection lives on the owner
//! loop, via a completion message for forwarded ones. The event loop
//! never blocks on the origin: parked requests cost a table entry,
//! unrelated keys keep serving, and if the origin connection dies every
//! parked reader immediately receives the refusal/miss it would have
//! gotten without an origin (counted in `origin_errors`), with
//! reconnection retried on a timer. Refetching through the origin is
//! also the paper's §3.1 backchannel — the fetch clears the key's
//! invalidation-suppression mark at the store — and each owner loop
//! batches per-key read counts back to the origin as `ReadStats`
//! frames, which is what feeds the adaptive invalidate-vs-update
//! policy's `E[W]` estimator.

use crate::membership::Membership;
use crate::ring::DEFAULT_VNODES;
use crate::ServeClock;
use bytes::Bytes;
use fresca_cache::entry::Freshness;
use fresca_cache::refetch::{Park, RefetchTable};
use fresca_cache::slab::SlabCache;
use fresca_cache::{BoundedGet, CacheConfig, Capacity};
use fresca_net::pin::{repin_small, DEFAULT_PIN_THRESHOLD};
use fresca_net::{
    FramedStream, GetStatus, Message, NonBlockingFramedStream, PollRecv, ReadStat, RequestId,
    UpdateItem,
};
use fresca_sim::SimDuration;
use minipoll::{Interest, PollSet, Readiness};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Cache capacity (the eviction policy field is ignored: owned
    /// shards are slab-backed and always LRU — see
    /// [`fresca_cache::slab`]).
    pub cache: CacheConfig,
    /// Number of cache shards (rounded up to a power of two). Shards
    /// are partitioned across the event loops at startup; shard `s`
    /// is owned by loop `s % event_loops`.
    pub shards: usize,
    /// Number of event-loop threads. Connections are multiplexed onto
    /// them round-robin at accept time; *requests* are then routed by
    /// key to the loop owning the key's shard, so this is also the
    /// serving parallelism. Raise it to spread request processing
    /// across cores, not to admit more connections.
    pub event_loops: usize,
    /// Origin endpoint to refetch refused/missed keys through (see the
    /// module docs). `None` — the default — answers refusals and misses
    /// directly, exactly as before.
    pub origin: Option<SocketAddr>,
    /// Receive-buffer pinning threshold in bytes: a value smaller than
    /// this that was decoded from a read chunk at least 8× its size is
    /// copied into a fresh allocation before it is cached, so one tiny
    /// hot entry cannot pin a 64 KiB receive chunk. `0` disables
    /// re-pinning. See [`fresca_net::pin`].
    pub pin_threshold: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cache: CacheConfig::default(),
            shards: 16,
            event_loops: 2,
            origin: None,
            pin_threshold: DEFAULT_PIN_THRESHOLD,
        }
    }
}

/// Monotonically updated serving counters, shared across event-loop
/// threads. Relaxed ordering everywhere: these are statistics, not
/// synchronisation.
#[derive(Debug, Default)]
struct ServerStats {
    gets: AtomicU64,
    puts: AtomicU64,
    fresh: AtomicU64,
    stale_served: AtomicU64,
    refused: AtomicU64,
    misses: AtomicU64,
    push_batches: AtomicU64,
    keys_invalidated: AtomicU64,
    keys_updated: AtomicU64,
    connections: AtomicU64,
    open_connections: AtomicU64,
    protocol_errors: AtomicU64,
    refetches: AtomicU64,
    refetch_coalesced: AtomicU64,
    origin_errors: AtomicU64,
    cross_core_forwards: AtomicU64,
    handoff_in: AtomicU64,
    handoff_out: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// `GetReq`s handled.
    pub gets: u64,
    /// `PutReq`s handled.
    pub puts: u64,
    /// Reads served fresh (within TTL and bound).
    pub fresh: u64,
    /// Reads served stale (past TTL, within the request's bound).
    pub stale_served: u64,
    /// Reads refused (entry older than the bound, or invalidated).
    pub refused: u64,
    /// Reads that found no entry.
    pub misses: u64,
    /// Store-pushed `Invalidate`/`Update` batches acknowledged.
    pub push_batches: u64,
    /// Keys marked stale by store-pushed `Invalidate` batches (present
    /// keys only; invalidations of uncached keys are not counted here).
    pub keys_invalidated: u64,
    /// Cached entries re-freshened by store-pushed `Update` batches.
    pub keys_updated: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Connections currently registered with an event loop.
    pub open_connections: u64,
    /// Connections dropped for sending non-serving-path or malformed
    /// frames.
    pub protocol_errors: u64,
    /// Origin fetches issued for refused/missed bounded reads (one per
    /// refetch epoch — coalesced readers do not add here).
    pub refetches: u64,
    /// Bounded reads that coalesced onto an already-in-flight refetch
    /// of their key instead of issuing another origin fetch.
    pub refetch_coalesced: u64,
    /// Reads answered with their fallback refusal/miss because the
    /// origin was unreachable or its connection died mid-fetch.
    pub origin_errors: u64,
    /// Operations forwarded to the event loop owning their key's shard
    /// (requests arriving on the owner loop serve inline and do not
    /// count here).
    pub cross_core_forwards: u64,
    /// Live entries across every owned slab shard (gauge, refreshed at
    /// each loop's end of tick).
    pub slab_entries: u64,
    /// Allocated slab slots across every owned shard — the storage
    /// high-water mark (gauge).
    pub slab_capacity: u64,
    /// Current membership epoch (0 = solo, see [`crate::membership`]).
    pub epoch: u64,
    /// Entries installed by inbound key handoff streams (a joining or
    /// rebalancing peer streamed them here as install-mode updates).
    pub handoff_in: u64,
    /// Entries streamed out to their new owners after a membership
    /// change moved them off this node.
    pub handoff_out: u64,
}

impl ServerStats {
    fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            fresh: self.fresh.load(Ordering::Relaxed),
            stale_served: self.stale_served.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            push_batches: self.push_batches.load(Ordering::Relaxed),
            keys_invalidated: self.keys_invalidated.load(Ordering::Relaxed),
            keys_updated: self.keys_updated.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            refetches: self.refetches.load(Ordering::Relaxed),
            refetch_coalesced: self.refetch_coalesced.load(Ordering::Relaxed),
            origin_errors: self.origin_errors.load(Ordering::Relaxed),
            cross_core_forwards: self.cross_core_forwards.load(Ordering::Relaxed),
            slab_entries: 0,
            slab_capacity: 0,
            epoch: 0,
            handoff_in: self.handoff_in.load(Ordering::Relaxed),
            handoff_out: self.handoff_out.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Display for ServerStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gets={} puts={} fresh={} stale_served={} refused={} misses={} \
             refetches={} coalesced={} origin_errs={} forwards={} \
             push_batches={} keys_invalidated={} keys_updated={} \
             slab={}/{} conns={} open={} proto_errs={} \
             epoch={} handoff_in={} handoff_out={}",
            self.gets,
            self.puts,
            self.fresh,
            self.stale_served,
            self.refused,
            self.misses,
            self.refetches,
            self.refetch_coalesced,
            self.origin_errors,
            self.cross_core_forwards,
            self.push_batches,
            self.keys_invalidated,
            self.keys_updated,
            self.slab_entries,
            self.slab_capacity,
            self.connections,
            self.open_connections,
            self.protocol_errors,
            self.epoch,
            self.handoff_in,
            self.handoff_out
        )
    }
}

/// Shard-routing hash: the two-constant SplitMix variant. Deliberately
/// *not* the three-constant round the slab's key index finalises with
/// ([`fresca_cache::slab::SplitMixHasher`]) — shard selection keys on
/// the low bits, and reusing the index hash would put every key of a
/// shard into the same index buckets.
#[inline]
fn shard_hash(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^ (z >> 31)
}

/// The static shard → loop partition every thread routes by.
#[derive(Debug, Clone, Copy)]
struct Topology {
    /// Global shard count minus one (shard count is a power of two).
    shard_mask: u64,
    num_loops: usize,
}

impl Topology {
    #[inline]
    fn shard_of(&self, key: u64) -> usize {
        (shard_hash(key) & self.shard_mask) as usize
    }

    /// The loop owning `key`'s shard.
    #[inline]
    fn owner_of(&self, key: u64) -> usize {
        self.shard_of(key) % self.num_loops
    }

    /// Index of `key`'s shard within its owner's `Vec<SlabCache>`.
    #[inline]
    fn local_index(&self, key: u64) -> usize {
        self.shard_of(key) / self.num_loops
    }

    /// How many shards `loop_id` owns.
    fn owned_shards(&self, loop_id: usize) -> usize {
        let total = self.shard_mask as usize + 1;
        (loop_id..total).step_by(self.num_loops.max(1)).count()
    }
}

/// Work for the handoff streamer thread: blocking sends of membership
/// announcements and bulk key transfers, kept off the event loops.
enum HandoffCmd {
    /// Stream `items` to `dest` as install-mode `Update` batches under
    /// epoch `epoch` (announced first via `RingUpdate`), closing with
    /// `HandoffDone`.
    Stream { dest: String, epoch: u64, members: Vec<String>, items: Vec<UpdateItem> },
    /// Announce a membership change to `dest` (no keys to move).
    Announce { dest: String, epoch: u64, members: Vec<String> },
}

/// Everything an event loop needs to dispatch requests.
struct Shared {
    stats: Arc<ServerStats>,
    // One global version counter: versions are monotone across all keys,
    // which is stronger than the per-key monotonicity clients rely on.
    // Per-key alloc+insert needs no lock: a key's owner thread is the
    // only writer of its shard, so the two steps cannot interleave.
    versions: AtomicU64,
    clock: ServeClock,
    stop: AtomicBool,
    /// Graceful-shutdown mode: with `stop` set, event loops drain every
    /// queued reply and in-flight forwarded request before exiting
    /// instead of closing connections immediately.
    drain: AtomicBool,
    topo: Topology,
    /// Per-loop slab gauges, published by each owner at end of tick and
    /// summed for stats and `StatsResp`.
    slab_entries: Vec<AtomicU64>,
    slab_capacity: Vec<AtomicU64>,
    /// The epoch-stamped member list this node routes ownership by.
    /// Locked only for short view reads/updates on membership frames —
    /// never held across I/O or shard access.
    membership: Mutex<Membership>,
    /// The name this node appears under in member lists (its advertised
    /// address; defaults to the bound address).
    advertise: String,
    /// Queue into the handoff streamer thread. Behind a mutex only to
    /// be `Sync`; membership changes are rare, contention is nil.
    handoff_tx: Mutex<mpsc::Sender<HandoffCmd>>,
}

impl Shared {
    fn snapshot(&self) -> ServerStatsSnapshot {
        let mut snap = self.stats.snapshot();
        snap.slab_entries = self.slab_entries.iter().map(|g| g.load(Ordering::Relaxed)).sum();
        snap.slab_capacity = self.slab_capacity.iter().map(|g| g.load(Ordering::Relaxed)).sum();
        snap.epoch = self.membership.lock().epoch;
        snap
    }

    /// Hand work to the streamer thread; a send failure means the
    /// streamer exited (process teardown) and the handoff degrades to
    /// cold misses at the new owner — by design never an error.
    fn send_handoff(&self, cmd: HandoffCmd) {
        let _ = self.handoff_tx.lock().send(cmd);
    }
}

/// An operation forwarded to the loop that owns its key's shard.
enum ForwardOp {
    /// A bounded read; the owner replies (or parks on its refetch
    /// table) exactly as if the request had arrived locally.
    Get { id: RequestId, key: u64, max_staleness: u64 },
    /// A write; the owner allocates the version and installs.
    Put { id: RequestId, key: u64, value: Bytes, ttl: u64 },
    /// The sub-batch of a store-pushed `Invalidate` owned by the
    /// destination; completion decrements the home loop's pending
    /// batch `batch`.
    InvalidateKeys { batch: u64, keys: Vec<u64> },
    /// The sub-batch of a store-pushed `Update` owned by the
    /// destination. `install` is true for handoff streams (see
    /// [`Conn::handoff`]): absent keys are installed instead of
    /// counting as missed updates.
    UpdateItems { batch: u64, items: Vec<UpdateItem>, install: bool },
}

/// What a completed cross-core operation sends back to the home loop.
enum Completion {
    /// A fully-formed reply to queue on the originating connection.
    Reply(Message),
    /// One owner finished its sub-batch of pending batch `batch`.
    BatchPart { batch: u64 },
}

/// A message between event loops (or from [`ServerHandle`]), carried
/// through the destination's inbox + self-pipe wake.
enum CoreMsg {
    /// Forwarded operation: `from` is the home loop the completion goes
    /// back to; `(slot, token)` name the originating connection there.
    Op { from: usize, slot: usize, token: u64, op: ForwardOp },
    /// A completion routed back to the home loop's connection.
    Done { slot: usize, token: u64, what: Completion },
    /// Control-plane invalidation from [`ServerHandle::invalidate`],
    /// answered over the one-shot channel (`true` if the key was
    /// cached). Always addressed to the key's owner loop.
    Invalidate { key: u64, reply: mpsc::Sender<bool> },
    /// The membership view changed: rescan this loop's owned shards and
    /// stream entries that now belong to other nodes to the handoff
    /// thread. Broadcast to every loop by whichever loop adopted the
    /// new view.
    Rebalance,
}

/// A store-push batch waiting on forwarded sub-batches; the `Ack` goes
/// out when `remaining` owners have reported back.
struct PendingBatch {
    seq: u64,
    slot: usize,
    token: u64,
    remaining: u32,
}

/// What the accept thread (and peer loops) deposit for an event loop:
/// freshly accepted sockets and cross-core messages, drained together
/// on the next wake.
#[derive(Default)]
struct LoopInbox {
    conns: Vec<TcpStream>,
    msgs: Vec<CoreMsg>,
}

/// One row of a loop's routing table: where to deposit messages for a
/// destination loop and how to wake it.
struct Peer {
    inbox: Arc<Mutex<LoopInbox>>,
    // Writing one byte wakes the loop's poll; non-blocking, so a full
    // pipe (wake already pending) is fine to ignore.
    wake_tx: UnixStream,
}

/// Accept-side handle to one event loop.
struct LoopHandle {
    inbox: Arc<Mutex<LoopInbox>>,
    wake_tx: UnixStream,
    join: JoinHandle<()>,
}

impl LoopHandle {
    fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1]);
    }
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::shutdown`] to stop the accept and event-loop threads.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_loop: Option<JoinHandle<()>>,
    loops: Vec<LoopHandle>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for LoopHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopHandle").finish_non_exhaustive()
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
/// serving in background threads. Returns once the listener is bound, so
/// clients may connect immediately. The node advertises itself in
/// member lists under its bound address; multi-node deployments whose
/// peers reach them under a different spelling use
/// [`spawn_with_identity`].
pub fn spawn<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> io::Result<ServerHandle> {
    spawn_with_identity(addr, config, None)
}

/// [`spawn`], with an explicit advertised name — the exact string this
/// node appears under in ring member lists. Every cluster participant
/// must spell a member identically (ring placement hashes the name), so
/// the advertised name is part of the cluster's configuration, not a
/// cosmetic label.
pub fn spawn_with_identity<A: ToSocketAddrs>(
    addr: A,
    config: ServerConfig,
    advertise: Option<String>,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let num_loops = config.event_loops.max(1);
    let shards = config.shards.max(1).next_power_of_two();
    let topo = Topology { shard_mask: shards as u64 - 1, num_loops };
    let stats = Arc::new(ServerStats::default());
    let (handoff_tx, handoff_rx) = mpsc::channel();
    {
        let stats = Arc::clone(&stats);
        std::thread::spawn(move || run_handoff_streamer(handoff_rx, stats));
    }
    let shared = Arc::new(Shared {
        stats,
        versions: AtomicU64::new(0),
        clock: ServeClock::start(),
        stop: AtomicBool::new(false),
        drain: AtomicBool::new(false),
        topo,
        slab_entries: (0..num_loops).map(|_| AtomicU64::new(0)).collect(),
        slab_capacity: (0..num_loops).map(|_| AtomicU64::new(0)).collect(),
        membership: Mutex::new(Membership::solo()),
        advertise: advertise.unwrap_or_else(|| addr.to_string()),
        handoff_tx: Mutex::new(handoff_tx),
    });

    // Every loop's inbox and wake endpoint exist before any thread
    // starts, so each loop can carry a complete routing table of its
    // peers from its first tick.
    let mut endpoints: Vec<(Arc<Mutex<LoopInbox>>, UnixStream)> = Vec::with_capacity(num_loops);
    let mut wake_rxs = Vec::with_capacity(num_loops);
    for _ in 0..num_loops {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        endpoints.push((Arc::new(Mutex::new(LoopInbox::default())), wake_tx));
        wake_rxs.push(wake_rx);
    }

    let mut loops = Vec::with_capacity(num_loops);
    for (loop_id, wake_rx) in wake_rxs.into_iter().enumerate() {
        let peers: Vec<Peer> = endpoints
            .iter()
            .map(|(inbox, tx)| Ok(Peer { inbox: Arc::clone(inbox), wake_tx: tx.try_clone()? }))
            .collect::<io::Result<_>>()?;
        let inbox = Arc::clone(&endpoints[loop_id].0);
        let wake_tx = endpoints[loop_id].1.try_clone()?;
        let join = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                EventLoop::new(loop_id, wake_rx, peers, shared, config).run();
            })
        };
        loops.push(LoopHandle { inbox, wake_tx, join });
    }

    let accept_loop = {
        let shared = Arc::clone(&shared);
        let mut targets: Vec<(Arc<Mutex<LoopInbox>>, UnixStream)> = loops
            .iter()
            .map(|l| Ok((Arc::clone(&l.inbox), l.wake_tx.try_clone()?)))
            .collect::<io::Result<_>>()?;
        std::thread::spawn(move || {
            let mut next = 0usize;
            for conn in listener.incoming() {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(conn) = conn else { continue };
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                shared.stats.open_connections.fetch_add(1, Ordering::Relaxed);
                let n = targets.len();
                let (inbox, wake) = &mut targets[next % n];
                next += 1;
                inbox.lock().conns.push(conn);
                let _ = wake.write(&[1]);
            }
        })
    };

    Ok(ServerHandle { addr, shared, accept_loop: Some(accept_loop), loops })
}

impl ServerHandle {
    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.shared.snapshot()
    }

    /// Apply a backend-originated invalidation: mark `key`'s entry
    /// known-stale on the event loop owning its shard. Returns `true`
    /// if the key was cached. This is the operator-facing replacement
    /// for reaching into the (now loop-owned, unlocked) shards
    /// directly: it routes a control message through the owner's inbox
    /// and waits briefly for the answer.
    pub fn invalidate(&self, key: u64) -> bool {
        let owner = self.shared.topo.owner_of(key);
        let Some(l) = self.loops.get(owner) else { return false };
        let (tx, rx) = mpsc::channel();
        l.inbox.lock().msgs.push(CoreMsg::Invalidate { key, reply: tx });
        l.wake();
        rx.recv_timeout(Duration::from_secs(5)).unwrap_or(false)
    }

    /// The server's clock, for callers that want to interpret entry ages
    /// on the server's timeline.
    pub fn clock(&self) -> ServeClock {
        self.shared.clock
    }

    /// Number of event-loop threads serving connections.
    pub fn event_loops(&self) -> usize {
        self.loops.len()
    }

    /// The node's current membership view (epoch + member list).
    pub fn membership(&self) -> Membership {
        self.shared.membership.lock().clone()
    }

    /// The name this node advertises in ring member lists.
    pub fn advertise(&self) -> &str {
        &self.shared.advertise
    }

    /// Stop the server: the accept thread and every event-loop thread are
    /// joined, closing all established connections. Requests already
    /// received are answered before their connection closes only if their
    /// responses were already written; clients with requests in flight
    /// observe EOF.
    pub fn shutdown(mut self) -> ServerStatsSnapshot {
        self.stop_threads();
        self.shared.snapshot()
    }

    /// Stop the server *gracefully*: no new connections or requests are
    /// accepted, but every reply already queued and every request still
    /// in flight (forwarded cross-core, parked on an origin refetch, or
    /// pending in a store-push batch) is answered and drained to the
    /// socket before its connection closes. This is what SIGTERM maps
    /// to in the `serve` binary — a killed node owes its clients every
    /// response for requests it already read.
    pub fn shutdown_graceful(mut self) -> ServerStatsSnapshot {
        self.shared.drain.store(true, Ordering::Release);
        self.stop_threads();
        self.shared.snapshot()
    }

    fn stop_threads(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_loop.take() {
            let _ = h.join();
        }
        for l in &self.loops {
            l.wake();
        }
        for l in self.loops.drain(..) {
            let _ = l.join.join();
        }
    }
}

/// One registered connection: the framed transport plus the raw fd it
/// polls under.
struct Conn {
    io: NonBlockingFramedStream<TcpStream>,
    fd: RawFd,
    /// Loop-unique identity for this registration. Parked refetch
    /// waiters and cross-core completions name their connection by
    /// `(slot, token)`; the token is what stops a reply from landing on
    /// an unrelated connection that reused the slot after the original
    /// closed.
    token: u64,
    /// No more requests will be read (clean EOF — possibly a half-close
    /// — or a protocol violation), but replies already queued still
    /// drain before the connection is dropped. The blocking server
    /// answered every request it had read; the reactor keeps that
    /// property.
    closing: bool,
    /// Requests read off this connection whose replies have not been
    /// queued yet: forwarded cross-core operations, pending store-push
    /// batches, and parked origin refetches. A closing connection
    /// drains these too before it is dropped — a half-closing client is
    /// owed every response, including the ones completing on another
    /// core.
    in_flight: u32,
    /// True once a `RingUpdate` arrived on this connection — the marker
    /// a handoff streamer sends before its `Update` batches. Updates on
    /// a handoff connection run in *install mode*: absent keys are
    /// installed instead of being counted as missed updates, which is
    /// what moves ownership of a key's bytes between nodes. Store-push
    /// connections never send `RingUpdate`, so their updates keep the
    /// paper's update-in-place semantics.
    handoff: bool,
}

/// A parked bounded read, waiting on an origin refetch of its key at
/// the key's owner loop. `home` is the loop whose connection table
/// `(slot, token)` index into — the owner delivers directly when that
/// is itself, via a completion message otherwise. The fallback fields
/// reconstruct the reply the request would have gotten with no origin,
/// for delivery if the fetch fails.
struct Waiter {
    home: usize,
    slot: usize,
    token: u64,
    id: RequestId,
    fallback_status: GetStatus,
    fallback_age: u64,
}

/// The non-blocking origin connection one event loop refetches through.
struct OriginLink {
    io: NonBlockingFramedStream<TcpStream>,
    fd: RawFd,
}

/// Per-event-loop origin state: the link (when up), the in-flight
/// refetch table, and the read-count batch owed to the origin's
/// `E[W]` estimator.
struct OriginCtx {
    addr: SocketAddr,
    link: Option<OriginLink>,
    /// Don't re-attempt a failed connect before this instant.
    retry_at: Option<Instant>,
    table: RefetchTable<Waiter>,
    read_counts: HashMap<u64, u32>,
    reads_pending: u32,
}

/// How long a (blocking, inline) origin connect attempt may take. Kept
/// short: it runs on the event-loop thread when a park finds the link
/// down and the retry timer expired.
const ORIGIN_CONNECT_TIMEOUT: Duration = Duration::from_millis(100);

/// Backoff between origin connect attempts. While it runs, refused and
/// missed reads degrade to their fallback replies immediately.
const ORIGIN_RETRY: Duration = Duration::from_secs(1);

/// Flush the pending read-count batch to the origin once this many
/// reads accumulate…
const READ_STATS_FLUSH_READS: u32 = 1024;

/// …or once this many distinct keys do, whichever comes first.
const READ_STATS_FLUSH_KEYS: usize = 256;

/// With the origin link down, stop hoarding read counts past this many
/// distinct keys — the estimator feed is advisory, memory is not.
const READ_STATS_MAX_BUFFERED_KEYS: usize = 4096;

impl OriginCtx {
    fn new(addr: SocketAddr) -> Self {
        OriginCtx {
            addr,
            link: None,
            retry_at: None,
            table: RefetchTable::new(),
            read_counts: HashMap::new(),
            reads_pending: 0,
        }
    }

    /// True when the origin link is up — connecting now if it is down
    /// and the retry backoff has expired. A failed attempt arms the
    /// backoff and returns false, so callers degrade immediately
    /// instead of queueing behind a dead endpoint.
    fn ensure_link(&mut self) -> bool {
        if self.link.is_some() {
            return true;
        }
        let now = Instant::now();
        if self.retry_at.is_some_and(|at| now < at) {
            return false;
        }
        match TcpStream::connect_timeout(&self.addr, ORIGIN_CONNECT_TIMEOUT)
            .and_then(|stream| {
                stream.set_nodelay(true)?;
                stream.set_nonblocking(true)?;
                Ok(stream)
            }) {
            Ok(stream) => {
                let fd = stream.as_raw_fd();
                self.link = Some(OriginLink { io: NonBlockingFramedStream::new(stream), fd });
                self.retry_at = None;
                true
            }
            Err(_) => {
                self.retry_at = Some(now + ORIGIN_RETRY);
                false
            }
        }
    }

    /// Count one read of `key` toward the next `ReadStats` batch.
    fn count_read(&mut self, key: u64) {
        *self.read_counts.entry(key).or_insert(0) += 1;
        self.reads_pending += 1;
    }

    /// Queue the pending read-count batch on the link when it is due
    /// (or shed it when the link is down and the buffer outgrew its
    /// cap). The caller flushes the link afterwards.
    fn queue_read_stats(&mut self) {
        match &mut self.link {
            None => {
                if self.read_counts.len() > READ_STATS_MAX_BUFFERED_KEYS {
                    self.read_counts.clear();
                    self.reads_pending = 0;
                }
            }
            Some(link) => {
                if self.reads_pending >= READ_STATS_FLUSH_READS
                    || self.read_counts.len() >= READ_STATS_FLUSH_KEYS
                {
                    let entries: Vec<ReadStat> = self
                        .read_counts
                        .drain()
                        .map(|(key, reads)| ReadStat { key, reads })
                        .collect();
                    self.reads_pending = 0;
                    if !entries.is_empty() {
                        link.io.queue(&Message::ReadStats { entries });
                    }
                }
            }
        }
    }
}

/// Read-side backpressure: while a connection has more than this many
/// unsent response bytes buffered, the reactor stops reading (and thus
/// accepting) further requests from it until the client drains its side.
/// Bounds per-connection server memory at roughly this plus one maximal
/// response.
const OUTBOUND_HIGH_WATER: usize = 1 << 20;

/// Fairness: at most this many requests are processed per connection per
/// poll tick, so one firehose connection cannot starve its event-loop
/// neighbours.
const MAX_FRAMES_PER_TICK: usize = 128;

/// Poll cadence while a graceful drain is in progress: the exit
/// condition (all connections server-wide answered and closed) is
/// global, so each loop re-checks it on this timer.
const DRAIN_POLL: Duration = Duration::from_millis(5);

/// How long a graceful drain waits for unresponsive peers before
/// closing whatever is left. Clients that read their sockets drain in
/// milliseconds; this bounds shutdown against ones that do not.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// What `dispatch` decided for one request.
enum Dispatch {
    /// Answer with this message.
    Reply(Message),
    /// No reply now: the request was forwarded to its key's owner loop
    /// or parked on an in-flight origin refetch, and will be answered
    /// when the completion (or fetch) comes back.
    Pending,
    /// Not a request this node answers — protocol error, close after
    /// draining what was already queued.
    Close,
    /// Handled with no reply owed (fire-and-forget frames like
    /// `HandoffDone`).
    Nothing,
}

/// One event-loop thread: the poll reactor plus the slab shards this
/// loop exclusively owns. All shard access happens through `&mut self`
/// on this thread — the serving hot path takes no lock.
struct EventLoop {
    loop_id: usize,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    /// The owned shards, indexed by [`Topology::local_index`].
    shards: Vec<SlabCache>,
    /// Routing table to every loop (the self entry doubles as this
    /// loop's own inbox).
    peers: Vec<Peer>,
    /// Per-destination staging for cross-core messages; flushed into
    /// peer inboxes (one lock + one wake each) at end of tick.
    outbox: Vec<Vec<CoreMsg>>,
    /// Slot-indexed connection table; `None` slots are free and reused.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_token: u64,
    origin: Option<OriginCtx>,
    /// Store-push batches waiting on forwarded sub-batches, by batch id.
    pending: HashMap<u64, PendingBatch>,
    next_batch: u64,
    pin_threshold: usize,
    /// Graceful-shutdown drain in progress: no new reads, exit once
    /// every connection has received everything it is owed (or the
    /// drain grace period expires).
    draining: bool,
    drain_started: Option<Instant>,
}

impl EventLoop {
    fn new(
        loop_id: usize,
        wake_rx: UnixStream,
        peers: Vec<Peer>,
        shared: Arc<Shared>,
        config: ServerConfig,
    ) -> Self {
        // Per-shard capacity divides the configured total across the
        // *global* shard count, exactly like the locked ShardedCache
        // did, so the aggregate matches the configured total.
        let total_shards = shared.topo.shard_mask as usize + 1;
        let per_shard = match config.cache.capacity {
            Capacity::Entries(e) => Capacity::Entries((e / total_shards).max(1)),
            Capacity::Bytes(b) => Capacity::Bytes((b / total_shards as u64).max(1)),
            Capacity::Unbounded => Capacity::Unbounded,
        };
        let owned = shared.topo.owned_shards(loop_id);
        let num_loops = shared.topo.num_loops;
        let mut origin = config.origin.map(OriginCtx::new);
        if let Some(ctx) = &mut origin {
            // Dial the origin eagerly so the first refused read parks
            // instead of paying the connect on its own request path.
            ctx.ensure_link();
        }
        EventLoop {
            loop_id,
            wake_rx,
            shared,
            shards: (0..owned).map(|_| SlabCache::new(per_shard)).collect(),
            peers,
            outbox: (0..num_loops).map(|_| Vec::new()).collect(),
            conns: Vec::new(),
            free: Vec::new(),
            next_token: 0,
            origin,
            pending: HashMap::new(),
            next_batch: 0,
            pin_threshold: config.pin_threshold,
            draining: false,
            drain_started: None,
        }
    }

    /// Index of `key`'s shard in `self.shards` — only meaningful on the
    /// owner loop.
    #[inline]
    fn local_shard(&self, key: u64) -> usize {
        self.shared.topo.local_index(key)
    }

    /// The reactor: multiplex every connection assigned to this loop
    /// over one `poll(2)` set. Index 0 of the set is always the wake
    /// pipe; the origin link (when configured and up) takes index 1;
    /// connection slots follow. The loop exits when the shared stop
    /// flag is set.
    fn run(mut self) {
        let wake_fd = self.wake_rx.as_raw_fd();
        let mut poll = PollSet::new();
        // poll index -> conn slot for this tick (index 0 is the wake pipe).
        let mut slot_of: Vec<usize> = Vec::new();
        // One read-scratch buffer shared by every connection on this loop:
        // it holds no per-stream state, so idle connections cost no
        // read-buffer memory.
        let mut scratch = vec![0u8; 64 * 1024];

        loop {
            poll.clear();
            slot_of.clear();
            poll.push(wake_fd, Interest::READABLE);
            // A connection has *backlog* when complete frames already sit in
            // its decoder (the per-tick budget cut servicing short) and it is
            // under the outbound high-water mark. Such connections must be
            // serviced this tick even if their descriptor never becomes
            // readable again, so backlog forces a zero-timeout poll.
            let mut backlog = false;
            // The origin link polls at index 1 when present: always for
            // reads (a FetchResp can arrive any tick), for writes while
            // frames are buffered outbound.
            let link_polled = match self.origin.as_ref().and_then(|c| c.link.as_ref()) {
                Some(link) => {
                    let mut interest = Interest::READABLE;
                    if link.io.wants_write() {
                        interest = interest.and(Interest::WRITABLE);
                    }
                    backlog |= link.io.has_buffered_frame();
                    poll.push(link.fd, interest);
                    true
                }
                None => false,
            };
            let base = 1 + usize::from(link_polled);
            for (slot, conn) in self.conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                if conn.closing && !conn.io.wants_write() {
                    // Nothing left to read and nothing queued: the
                    // connection only waits on in-flight cross-core
                    // completions, which `deliver_to` flushes (and drops
                    // the connection) directly — polling its descriptor
                    // would just spin on writable readiness.
                    continue;
                }
                let reading = !conn.closing && conn.io.pending_out() <= OUTBOUND_HIGH_WATER;
                backlog |= reading && conn.io.has_buffered_frame();
                // Read interest only while under the outbound high-water
                // mark (a client that won't drain its responses doesn't get
                // to submit more requests) and not closing.
                let mut interest = if reading { Interest::READABLE } else { Interest::WRITABLE };
                if conn.io.wants_write() {
                    interest = interest.and(Interest::WRITABLE);
                }
                poll.push(conn.fd, interest);
                slot_of.push(slot);
            }
            let timeout = if backlog {
                Some(Duration::ZERO)
            } else if self.draining {
                // While draining, wake on a short timer too: the exit
                // condition is global (every loop's connections gone),
                // which no local readiness event announces.
                Some(DRAIN_POLL)
            } else {
                None
            };
            if poll.poll(timeout).is_err() {
                // poll(2) only fails for ENOMEM/EFAULT/EINVAL; none are
                // recoverable from here.
                self.close_all();
                return;
            }

            if poll.readiness(0).readable() {
                // Drain the wake pipe (many wakes coalesce into one drain).
                let mut buf = [0u8; 64];
                while matches!(self.wake_rx.read(&mut buf), Ok(n) if n > 0) {}
                if self.shared.stop.load(Ordering::Acquire) {
                    if self.shared.drain.load(Ordering::Acquire) {
                        self.begin_drain();
                    } else {
                        self.close_all();
                        return;
                    }
                }
                // Take the whole inbox out under the lock, act after
                // releasing it: registration does syscalls per socket, and
                // neither the accept thread nor peer loops must stall on
                // the mutex during bursts.
                let LoopInbox { conns: arrivals, msgs } =
                    std::mem::take(&mut *self.peers[self.loop_id].inbox.lock());
                for stream in arrivals {
                    self.next_token += 1;
                    match register(stream, self.next_token) {
                        Ok(conn) => match self.free.pop() {
                            Some(slot) => self.conns[slot] = Some(conn),
                            None => self.conns.push(Some(conn)),
                        },
                        Err(_) => {
                            self.shared.stats.open_connections.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                }
                // Cross-core traffic is serviced before this tick's new
                // socket reads: completions answer requests that have
                // been pending since at least the previous tick, and
                // forwarded ops apply before any same-key op decoded
                // this tick (per-key FIFO).
                for msg in msgs {
                    self.handle_core_msg(msg);
                }
            }

            // Drain origin FetchResps next: completed refetches answer
            // their parked readers before this tick's new requests are
            // serviced, so a just-installed key is immediately servable.
            if link_polled {
                let readiness = poll.readiness(1);
                let buffered = self
                    .origin
                    .as_ref()
                    .is_some_and(|c| c.link.as_ref().is_some_and(|l| l.io.has_buffered_frame()));
                if readiness.any() || buffered {
                    self.drain_origin(&mut scratch);
                }
            }

            for (i, &slot) in slot_of.iter().enumerate() {
                let readiness = poll.readiness(base + i);
                // Registered slots stay populated for the whole tick; a
                // vacant slot here would be a reactor bug, but the serving
                // loop must not be able to panic — skip it instead. The
                // connection is moved out of its slot while being serviced
                // so the dispatch path can borrow the loop's shards freely.
                let Some(mut conn) = self.conns[slot].take() else { continue };
                if !readiness.any() && (conn.closing || !conn.io.has_buffered_frame()) {
                    self.conns[slot] = Some(conn);
                    continue;
                }
                if self.service(&mut conn, slot, readiness, &mut scratch) {
                    self.conns[slot] = Some(conn);
                } else {
                    self.free.push(slot);
                    self.shared.stats.open_connections.fetch_sub(1, Ordering::Relaxed);
                }
            }

            // End of tick: push the owed read-count batch and any FetchReqs
            // queued while servicing connections. A write failure here is
            // an origin outage — fail every parked waiter to its fallback
            // and start the reconnect backoff.
            if let Some(mut ctx) = self.origin.take() {
                ctx.queue_read_stats();
                if let Some(link) = &mut ctx.link {
                    if link.io.wants_write() && link.io.flush().is_err() {
                        self.origin_outage(&mut ctx);
                    }
                }
                self.origin = Some(ctx);
            }
            // Then hand this tick's cross-core batches to their owners
            // (after the origin flush, which may have staged fallback
            // completions) and publish the slab gauges.
            self.flush_outboxes();
            self.publish_gauges();

            // A draining loop exits once every connection — on every
            // loop, since cross-core completions may still be owed to a
            // peer's client — has been answered and dropped, or the
            // grace period for unresponsive peers expires.
            if self.draining && self.drain_done() {
                self.close_all();
                return;
            }
        }
    }

    /// Enter graceful-drain mode: every connection stops reading new
    /// requests (marked closing) but keeps its queued replies and
    /// in-flight completions; fully-drained connections drop now.
    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.drain_started = Some(Instant::now());
        for slot in 0..self.conns.len() {
            let Some(mut conn) = self.conns[slot].take() else { continue };
            conn.closing = true;
            let done = match conn.io.flush() {
                Ok(_) => !conn.io.wants_write() && conn.in_flight == 0,
                Err(_) => true,
            };
            if done {
                self.free.push(slot);
                self.shared.stats.open_connections.fetch_sub(1, Ordering::Relaxed);
            } else {
                self.conns[slot] = Some(conn);
            }
        }
    }

    /// True when the drain has nothing left to wait for: every
    /// connection server-wide has been answered and closed, or the
    /// grace period expired (a peer that will not read its replies does
    /// not get to hold shutdown hostage forever).
    fn drain_done(&self) -> bool {
        if self.drain_started.is_some_and(|t| t.elapsed() >= DRAIN_GRACE) {
            return true;
        }
        self.shared.stats.open_connections.load(Ordering::Relaxed) == 0
    }

    /// Stage a cross-core message for `dest`, delivered at end of tick.
    fn forward(&mut self, dest: usize, msg: CoreMsg) {
        if let Some(out) = self.outbox.get_mut(dest) {
            out.push(msg);
        }
    }

    /// Route a completion for `(slot, token)` on loop `home` — directly
    /// into the local connection table when `home` is this loop, staged
    /// as a cross-core message otherwise.
    fn stage_done(&mut self, home: usize, slot: usize, token: u64, what: Completion) {
        if home == self.loop_id {
            self.handle_core_msg(CoreMsg::Done { slot, token, what });
        } else {
            self.forward(home, CoreMsg::Done { slot, token, what });
        }
    }

    /// Hand every non-empty outbox batch to its destination loop: one
    /// lock acquisition to append, one wake byte. Batch vectors are
    /// recycled to keep the steady state allocation-free.
    fn flush_outboxes(&mut self) {
        for dest in 0..self.outbox.len() {
            if self.outbox[dest].is_empty() {
                continue;
            }
            let mut batch = std::mem::take(&mut self.outbox[dest]);
            self.peers[dest].inbox.lock().msgs.append(&mut batch);
            let _ = (&self.peers[dest].wake_tx).write(&[1]);
            self.outbox[dest] = batch;
        }
    }

    /// Publish this loop's slab occupancy into the shared per-loop
    /// gauges (summed by stats snapshots and `StatsResp`).
    fn publish_gauges(&self) {
        let entries: u64 = self.shards.iter().map(|s| s.slab_entries() as u64).sum();
        let capacity: u64 = self.shards.iter().map(|s| s.slab_capacity() as u64).sum();
        if let Some(g) = self.shared.slab_entries.get(self.loop_id) {
            g.store(entries, Ordering::Relaxed);
        }
        if let Some(g) = self.shared.slab_capacity.get(self.loop_id) {
            g.store(capacity, Ordering::Relaxed);
        }
    }

    /// Apply one message from a peer loop (or the server handle).
    fn handle_core_msg(&mut self, msg: CoreMsg) {
        match msg {
            CoreMsg::Op { from, slot, token, op } => match op {
                ForwardOp::Get { id, key, max_staleness } => {
                    if let Some(reply) = self.serve_get(from, slot, token, id, key, max_staleness)
                    {
                        self.stage_done(from, slot, token, Completion::Reply(reply));
                    }
                }
                ForwardOp::Put { id, key, value, ttl } => {
                    let version = self.serve_put(key, value, ttl);
                    let reply = Message::PutResp { id, key, version };
                    self.stage_done(from, slot, token, Completion::Reply(reply));
                }
                ForwardOp::InvalidateKeys { batch, keys } => {
                    let applied = self.serve_invalidate(&keys);
                    self.shared.stats.keys_invalidated.fetch_add(applied, Ordering::Relaxed);
                    self.stage_done(from, slot, token, Completion::BatchPart { batch });
                }
                ForwardOp::UpdateItems { batch, items, install } => {
                    let applied = self.serve_update(items, install);
                    self.shared.stats.keys_updated.fetch_add(applied, Ordering::Relaxed);
                    self.stage_done(from, slot, token, Completion::BatchPart { batch });
                }
            },
            CoreMsg::Done { slot, token, what } => match what {
                Completion::Reply(reply) => self.deliver_to(slot, token, &reply),
                Completion::BatchPart { batch } => {
                    let finished = match self.pending.get_mut(&batch) {
                        Some(p) => {
                            p.remaining = p.remaining.saturating_sub(1);
                            p.remaining == 0
                        }
                        None => false,
                    };
                    if finished {
                        if let Some(p) = self.pending.remove(&batch) {
                            self.deliver_to(p.slot, p.token, &Message::Ack { seq: p.seq });
                        }
                    }
                }
            },
            CoreMsg::Invalidate { key, reply } => {
                let li = self.local_shard(key);
                let hit = match self.shards.get_mut(li) {
                    Some(shard) => shard.apply_invalidate(key),
                    None => false,
                };
                let _ = reply.send(hit);
            }
            CoreMsg::Rebalance => self.rebalance(),
        }
    }

    /// Queue `reply` on the connection at `(slot, token)` and push it
    /// toward the socket immediately — a pending request's poll tick is
    /// long gone, so nothing else would flush this connection promptly.
    /// Skips connections that closed (the slot token no longer
    /// matches); drops the connection on a transport error, exactly
    /// like `service`.
    fn deliver_to(&mut self, slot: usize, token: u64, reply: &Message) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { return };
        if conn.token != token {
            return;
        }
        conn.in_flight = conn.in_flight.saturating_sub(1);
        conn.io.queue(reply);
        let drop_now = match conn.io.flush() {
            // The last in-flight reply on a closing connection just
            // drained: the socket is done (it is not in the poll set, so
            // nothing else would drop it).
            Ok(_) => conn.closing && conn.in_flight == 0 && !conn.io.wants_write(),
            Err(_) => true,
        };
        if drop_now {
            self.conns[slot] = None;
            self.free.push(slot);
            self.shared.stats.open_connections.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Deliver to a refetch waiter: directly when its connection lives
    /// on this loop, as a staged completion otherwise.
    fn deliver_waiter(&mut self, w: &Waiter, reply: Message) {
        if w.home == self.loop_id {
            self.deliver_to(w.slot, w.token, &reply);
        } else {
            self.forward(
                w.home,
                CoreMsg::Done { slot: w.slot, token: w.token, what: Completion::Reply(reply) },
            );
        }
    }

    /// Drain FetchResps from the origin link (bounded per tick, like any
    /// other connection): install each fetched entry like a put and answer
    /// every reader parked on its key with a fresh age-0 response. Any
    /// transport error or protocol violation on the link is an outage.
    fn drain_origin(&mut self, scratch: &mut [u8]) {
        let Some(mut ctx) = self.origin.take() else { return };
        let mut budget = MAX_FRAMES_PER_TICK;
        let mut failed = false;
        while budget > 0 {
            budget -= 1;
            let Some(link) = ctx.link.as_mut() else { break };
            match link.io.poll_recv_with(scratch) {
                Ok(PollRecv::Msg(Message::FetchResp { key, version: _, value })) => {
                    // Install into the owned shard with a serving version
                    // from this node's counter (the store's version is a
                    // different domain — see the Update arm of dispatch).
                    // No TTL: the entry is fresh until invalidated/evicted.
                    // Owner-thread exclusivity makes alloc+insert atomic.
                    let now = self.shared.clock.now();
                    let value = repin_small(value, self.pin_threshold);
                    let version = self.shared.versions.fetch_add(1, Ordering::Relaxed) + 1;
                    let li = self.local_shard(key);
                    if let Some(shard) = self.shards.get_mut(li) {
                        shard.insert_value(key, version, value.clone(), now, None);
                    }
                    for w in ctx.table.complete(key) {
                        self.shared.stats.fresh.fetch_add(1, Ordering::Relaxed);
                        let reply = Message::GetResp {
                            id: w.id,
                            key,
                            version,
                            age: 0,
                            value: value.clone(),
                            status: GetStatus::Fresh,
                        };
                        self.deliver_waiter(&w, reply);
                    }
                }
                Ok(PollRecv::WouldBlock) => break,
                Ok(PollRecv::Msg(_)) | Ok(PollRecv::Closed) | Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        if failed {
            self.origin_outage(&mut ctx);
        }
        self.origin = Some(ctx);
    }

    /// The origin connection died: drop the link, arm the reconnect
    /// backoff, and answer every parked reader with the refusal/miss it
    /// would have gotten without an origin.
    fn origin_outage(&mut self, ctx: &mut OriginCtx) {
        ctx.link = None;
        ctx.retry_at = Some(Instant::now() + ORIGIN_RETRY);
        for (key, waiters) in ctx.table.fail_all() {
            for w in waiters {
                self.shared.stats.origin_errors.fetch_add(1, Ordering::Relaxed);
                match w.fallback_status {
                    GetStatus::Miss => self.shared.stats.misses.fetch_add(1, Ordering::Relaxed),
                    _ => self.shared.stats.refused.fetch_add(1, Ordering::Relaxed),
                };
                let reply = Message::GetResp {
                    id: w.id,
                    key,
                    version: 0,
                    value: Bytes::new(),
                    age: w.fallback_age,
                    status: w.fallback_status,
                };
                self.deliver_waiter(&w, reply);
            }
        }
    }

    /// Account for every connection this exiting loop force-closes: live
    /// slots plus sockets accepted but still waiting in the inbox (both
    /// were counted into `open_connections` at accept time).
    fn close_all(&self) {
        let waiting = self.peers[self.loop_id].inbox.lock().conns.len();
        let live = self.conns.iter().filter(|c| c.is_some()).count() + waiting;
        self.shared.stats.open_connections.fetch_sub(live as u64, Ordering::Relaxed);
    }

    /// Service one ready connection: decode complete frames (bounded per
    /// tick for fairness, and only while under the outbound high-water
    /// mark), dispatch, queue replies, then write as much as the socket
    /// accepts. Returns `false` when the connection should be dropped —
    /// which, for a clean EOF or a protocol violation, only happens after
    /// every already-queued reply has drained (a half-closing client still
    /// receives its responses).
    fn service(
        &mut self,
        conn: &mut Conn,
        slot: usize,
        readiness: Readiness,
        scratch: &mut [u8],
    ) -> bool {
        if !conn.closing
            && (readiness.readable() || readiness.error() || conn.io.has_buffered_frame())
        {
            let mut budget = MAX_FRAMES_PER_TICK;
            while budget > 0 && conn.io.pending_out() <= OUTBOUND_HIGH_WATER {
                budget -= 1;
                match conn.io.poll_recv_with(scratch) {
                    Ok(PollRecv::Msg(msg)) => match self.dispatch(msg, conn, slot) {
                        Dispatch::Reply(reply) => conn.io.queue(&reply),
                        Dispatch::Pending => conn.in_flight += 1,
                        Dispatch::Nothing => {}
                        Dispatch::Close => {
                            // Not a request this node answers (neither
                            // serving-path nor store-path): the peer is
                            // confused or hostile either way; answer what
                            // preceded it, then close.
                            self.shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            conn.closing = true;
                            break;
                        }
                    },
                    Ok(PollRecv::WouldBlock) => break,
                    Ok(PollRecv::Closed) => {
                        // Clean EOF, possibly a half-close with responses
                        // still owed: stop reading, drain, then drop.
                        conn.closing = true;
                        break;
                    }
                    Err(e) => {
                        if e.kind() == io::ErrorKind::InvalidData {
                            // Codec violation: frames are length-delimited so
                            // the stream is still aligned; deliver the
                            // replies already queued before closing.
                            self.shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            conn.closing = true;
                            break;
                        }
                        // Reset or EOF mid-frame: transport weather, the
                        // peer is gone — nothing left to deliver to.
                        return false;
                    }
                }
            }
        }
        // Push queued replies; leftover bytes keep write interest registered
        // for the next tick. A closing connection lives until its last
        // reply byte leaves — including replies still in flight on other
        // cores, which `deliver_to` queues (and drops the drained
        // connection) when they complete.
        match conn.io.flush() {
            Ok(_) => !conn.closing || conn.io.wants_write() || conn.in_flight > 0,
            Err(_) => false,
        }
    }

    /// Map one request onto the partitioned cache; [`Dispatch::Close`]
    /// for messages that do not belong on a cache node's socket.
    /// Serving-path requests (`GetReq`, `PutReq`) come from clients and
    /// route by key: owner-local keys serve inline against the owned
    /// shard, remote ones forward. Store-path batches (`Invalidate`,
    /// `Update`) come from a store-push node, split by owner, and are
    /// acknowledged by `seq` once every sub-batch completes; `StatsReq`
    /// comes from a load generator pinning down the refetch and
    /// forwarding counters. Membership frames (`RingReq`, `RingUpdate`,
    /// `JoinReq`, `LeaveReq`, `HandoffDone`) are control-plane traffic
    /// on the same socket — see [`crate::membership`] for the adoption
    /// rules they follow.
    fn dispatch(&mut self, msg: Message, conn: &mut Conn, slot: usize) -> Dispatch {
        let token = conn.token;
        match msg {
            Message::GetReq { id, key, max_staleness } => {
                self.shared.stats.gets.fetch_add(1, Ordering::Relaxed);
                let owner = self.shared.topo.owner_of(key);
                if owner == self.loop_id {
                    match self.serve_get(self.loop_id, slot, token, id, key, max_staleness) {
                        Some(reply) => Dispatch::Reply(reply),
                        None => Dispatch::Pending,
                    }
                } else {
                    self.shared.stats.cross_core_forwards.fetch_add(1, Ordering::Relaxed);
                    self.forward(
                        owner,
                        CoreMsg::Op {
                            from: self.loop_id,
                            slot,
                            token,
                            op: ForwardOp::Get { id, key, max_staleness },
                        },
                    );
                    Dispatch::Pending
                }
            }
            Message::StatsReq => {
                let snap = self.shared.snapshot();
                Dispatch::Reply(Message::StatsResp {
                    refetches: snap.refetches,
                    refetch_coalesced: snap.refetch_coalesced,
                    origin_errors: snap.origin_errors,
                    cross_core_forwards: snap.cross_core_forwards,
                    slab_entries: snap.slab_entries,
                    slab_capacity: snap.slab_capacity,
                    epoch: snap.epoch,
                    handoff_in: snap.handoff_in,
                    handoff_out: snap.handoff_out,
                })
            }
            Message::PutReq { id, key, value, ttl } => {
                self.shared.stats.puts.fetch_add(1, Ordering::Relaxed);
                let owner = self.shared.topo.owner_of(key);
                if owner == self.loop_id {
                    let version = self.serve_put(key, value, ttl);
                    Dispatch::Reply(Message::PutResp { id, key, version })
                } else {
                    self.shared.stats.cross_core_forwards.fetch_add(1, Ordering::Relaxed);
                    self.forward(
                        owner,
                        CoreMsg::Op {
                            from: self.loop_id,
                            slot,
                            token,
                            op: ForwardOp::Put { id, key, value, ttl },
                        },
                    );
                    Dispatch::Pending
                }
            }
            Message::Invalidate { seq, keys } => {
                // A store-pushed batch: mark this loop's share stale
                // directly, forward the rest to their owners, and ack the
                // whole batch by seq once every part reports back. Keys
                // the cache does not hold are no-ops (counted by the
                // cache as missed invalidations), exactly like the
                // simulation path.
                let mut remote: Vec<Vec<u64>> = Vec::new();
                remote.resize_with(self.shared.topo.num_loops, Vec::new);
                let mut local = Vec::new();
                for key in keys {
                    let owner = self.shared.topo.owner_of(key);
                    if owner == self.loop_id {
                        local.push(key);
                    } else if let Some(part) = remote.get_mut(owner) {
                        part.push(key);
                    }
                }
                let applied = self.serve_invalidate(&local);
                self.shared.stats.keys_invalidated.fetch_add(applied, Ordering::Relaxed);
                self.shared.stats.push_batches.fetch_add(1, Ordering::Relaxed);
                self.finish_batch(slot, token, seq, remote, |batch, keys| {
                    ForwardOp::InvalidateKeys { batch, keys }
                })
            }
            Message::Update { seq, items } => {
                // A store-pushed refresh batch: re-freshen every cached
                // entry in it, split by owner like an invalidation. The
                // pushed item carries the *store's* version, which lives
                // in a different counter domain than this node's serving
                // versions — so each owner allocates a fresh serving
                // version for each entry it refreshes, keeping the global
                // monotonicity clients' anomaly checks rely on. Absent
                // keys do nothing, per the paper's update semantics;
                // pushed updates carry no TTL, so refreshed entries are
                // fresh until invalidated or evicted.
                let mut remote: Vec<Vec<UpdateItem>> = Vec::new();
                remote.resize_with(self.shared.topo.num_loops, Vec::new);
                let mut local = Vec::new();
                for item in items {
                    let owner = self.shared.topo.owner_of(item.key);
                    if owner == self.loop_id {
                        local.push(item);
                    } else if let Some(part) = remote.get_mut(owner) {
                        part.push(item);
                    }
                }
                // Handoff streams reuse the Update machinery in install
                // mode (see `Conn::handoff`): absent keys are installed,
                // moving ownership, instead of counting as missed
                // updates.
                let install = conn.handoff;
                let applied = self.serve_update(local, install);
                self.shared.stats.keys_updated.fetch_add(applied, Ordering::Relaxed);
                self.shared.stats.push_batches.fetch_add(1, Ordering::Relaxed);
                self.finish_batch(slot, token, seq, remote, move |batch, items| {
                    ForwardOp::UpdateItems { batch, items, install }
                })
            }
            Message::RingReq => {
                // Answer with the current view, whatever it is — the
                // reply a client uses to (re)discover the ring after an
                // epoch change or a reconnect.
                let view = self.shared.membership.lock().clone();
                Dispatch::Reply(Message::RingUpdate { epoch: view.epoch, members: view.members })
            }
            Message::RingUpdate { epoch, members } => {
                // A peer (or handoff streamer) pushes its view: adopt
                // iff strictly newer, rebalance if adopted, and echo the
                // epoch we hold *after* processing. The sender of a
                // handoff stream announces itself this way, so the
                // connection flips into install mode either way.
                conn.handoff = true;
                let adopted = self.shared.membership.lock().adopt(epoch, &members);
                if adopted {
                    self.broadcast_rebalance();
                }
                let now = self.shared.membership.lock().epoch;
                Dispatch::Reply(Message::RingAck { epoch: now })
            }
            Message::JoinReq { node } => {
                let changed = self.shared.membership.lock().apply_join(&node);
                self.membership_changed(changed, None)
            }
            Message::LeaveReq { node } => {
                let changed = self.shared.membership.lock().apply_leave(&node);
                // The departing node is the one member the new view no
                // longer names — and the one that must hear about the
                // change, because its rebalance is what streams every
                // key it owned over to the survivors.
                self.membership_changed(changed, Some(&node))
            }
            Message::HandoffDone { .. } => {
                // Fire-and-forget close of a handoff stream; the moved
                // entries were already counted as they installed.
                Dispatch::Nothing
            }
            _ => Dispatch::Close,
        }
    }

    /// Finish a join/leave: on a view change, rebalance locally and
    /// broadcast the new view to every *other* member (via the handoff
    /// thread — announcing is blocking I/O and stays off the reactor),
    /// plus `departed` on a leave, so the leaver learns to hand its
    /// keys off. Either way the caller is answered with the current
    /// view.
    fn membership_changed(
        &mut self,
        changed: Option<(u64, Vec<String>)>,
        departed: Option<&str>,
    ) -> Dispatch {
        if let Some((epoch, members)) = changed {
            self.broadcast_rebalance();
            for dest in members.iter().map(String::as_str).chain(departed) {
                if dest != self.shared.advertise {
                    self.shared.send_handoff(HandoffCmd::Announce {
                        dest: dest.to_string(),
                        epoch,
                        members: members.clone(),
                    });
                }
            }
            return Dispatch::Reply(Message::RingUpdate { epoch, members });
        }
        let view = self.shared.membership.lock().clone();
        Dispatch::Reply(Message::RingUpdate { epoch: view.epoch, members: view.members })
    }

    /// Tell every event loop (this one inline) to rescan its owned
    /// shards against the just-adopted view and stream moved keys out.
    fn broadcast_rebalance(&mut self) {
        for dest in 0..self.shared.topo.num_loops {
            if dest == self.loop_id {
                self.rebalance();
            } else {
                self.forward(dest, CoreMsg::Rebalance);
            }
        }
    }

    /// Rescan this loop's owned shards against the current membership
    /// view: entries whose owner is now another node are removed here
    /// and handed to the streamer thread, grouped per destination.
    /// Only *servably fresh* entries travel — an invalidated or
    /// TTL-expired entry must not be resurrected as fresh on the new
    /// owner, so those are simply dropped (a cold miss there, never a
    /// silent staleness violation). Handoff is an optimisation, not a
    /// correctness requirement: any key that fails to move is re-fetched
    /// or re-written at its new owner like any cold key.
    fn rebalance(&mut self) {
        let view = self.shared.membership.lock().clone();
        // Solo nodes (empty view) keep everything: there is no
        // "elsewhere" to stream to. A node *absent* from a non-empty
        // view is the graceful-leave case — every key it holds now
        // belongs to some survivor, so the scan below (where `owner ==
        // advertise` never matches) drains its shards completely.
        let Some(ring) = view.ring(DEFAULT_VNODES) else { return };
        let now = self.shared.clock.now();
        let mut moved: HashMap<String, Vec<UpdateItem>> = HashMap::new();
        for shard in &mut self.shards {
            let keys: Vec<u64> = shard.keys().collect();
            for key in keys {
                let Some(owner) = ring.node_for(key) else { continue };
                if owner == self.shared.advertise {
                    continue;
                }
                if let Some(entry) = shard.peek(key) {
                    let servable = entry.state == Freshness::Fresh
                        && entry.expires_at.is_none_or(|at| now < at);
                    if servable {
                        moved.entry(owner.to_string()).or_default().push(UpdateItem {
                            key,
                            version: entry.version,
                            value: entry.value.clone(),
                        });
                    }
                }
                shard.remove(key);
            }
        }
        for (dest, items) in moved {
            self.shared.send_handoff(HandoffCmd::Stream {
                dest,
                epoch: view.epoch,
                members: view.members.clone(),
                items,
            });
        }
    }

    /// Ack a store-push batch now if nothing was forwarded, otherwise
    /// register the pending batch and forward every non-empty per-owner
    /// part (each counted as a cross-core forward).
    fn finish_batch<T>(
        &mut self,
        slot: usize,
        token: u64,
        seq: u64,
        parts: Vec<Vec<T>>,
        make_op: impl Fn(u64, Vec<T>) -> ForwardOp,
    ) -> Dispatch {
        let forwards = parts.iter().filter(|p| !p.is_empty()).count();
        if forwards == 0 {
            return Dispatch::Reply(Message::Ack { seq });
        }
        self.next_batch += 1;
        let batch = self.next_batch;
        self.pending
            .insert(batch, PendingBatch { seq, slot, token, remaining: forwards as u32 });
        for (owner, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            self.shared.stats.cross_core_forwards.fetch_add(1, Ordering::Relaxed);
            self.forward(
                owner,
                CoreMsg::Op { from: self.loop_id, slot, token, op: make_op(batch, part) },
            );
        }
        Dispatch::Pending
    }

    // ---- owner-local serving ------------------------------------------
    //
    // Everything below runs only on the loop that owns the key's shard
    // and touches the shard through plain `&mut` — the serving hot path
    // holds no lock (enforced by fresca-lint's lock-free-serve-path
    // rule). `home`/`slot`/`token` name the originating connection on
    // its home loop.

    /// Owner-local bounded read. `None` means the request was parked on
    /// an origin refetch and will be answered by `drain_origin`.
    fn serve_get(
        &mut self,
        home: usize,
        slot: usize,
        token: u64,
        id: RequestId,
        key: u64,
        max_staleness: u64,
    ) -> Option<Message> {
        if let Some(ctx) = self.origin.as_mut() {
            // Every read feeds the origin's E[W] estimator — parked or
            // answered, each counts exactly once, on the owner loop.
            ctx.count_read(key);
        }
        let now = self.shared.clock.now();
        let bound = (max_staleness != u64::MAX).then(|| SimDuration::from_nanos(max_staleness));
        let li = self.local_shard(key);
        // The bounded read clones the entry out of the owned shard — for
        // the value that is a refcount bump on the cached Bytes handle —
        // with no lock anywhere on the path. The same handle then rides
        // the outbound segment queue (or the completion message), so a
        // hit never copies the payload.
        let looked_up = match self.shards.get_mut(li) {
            Some(shard) => shard.get_bounded(key, now, bound),
            None => BoundedGet::Miss,
        };
        match looked_up {
            BoundedGet::Fresh(e) => {
                self.shared.stats.fresh.fetch_add(1, Ordering::Relaxed);
                Some(Message::GetResp {
                    id,
                    key,
                    version: e.version,
                    age: e.age(now).as_nanos(),
                    value: e.value,
                    status: GetStatus::Fresh,
                })
            }
            BoundedGet::ServedStale(e) => {
                self.shared.stats.stale_served.fetch_add(1, Ordering::Relaxed);
                Some(Message::GetResp {
                    id,
                    key,
                    version: e.version,
                    age: e.age(now).as_nanos(),
                    value: e.value,
                    status: GetStatus::ServedStale,
                })
            }
            BoundedGet::Refused(e) => {
                let age = e.age(now).as_nanos();
                if self.park(home, slot, token, id, key, GetStatus::RefusedStale, age) {
                    return None;
                }
                self.shared.stats.refused.fetch_add(1, Ordering::Relaxed);
                // No value travels back on a refusal — only the entry's
                // age, so the client can see by how much the bound was
                // missed.
                Some(Message::GetResp {
                    id,
                    key,
                    version: 0,
                    value: Bytes::new(),
                    age,
                    status: GetStatus::RefusedStale,
                })
            }
            BoundedGet::Miss => {
                if self.park(home, slot, token, id, key, GetStatus::Miss, 0) {
                    return None;
                }
                self.shared.stats.misses.fetch_add(1, Ordering::Relaxed);
                Some(Message::GetResp {
                    id,
                    key,
                    version: 0,
                    value: Bytes::new(),
                    age: 0,
                    status: GetStatus::Miss,
                })
            }
        }
    }

    /// Owner-local write: allocate a serving version and install into
    /// the owned shard. Version allocation and insert are atomic by
    /// owner-thread exclusivity — no other writer of this key exists.
    /// The value handle moves into the cache as-is (the refcounted
    /// slice the codec cut from the receive buffer) unless it is small
    /// enough relative to its backing chunk to be worth re-pinning.
    fn serve_put(&mut self, key: u64, value: Bytes, ttl: u64) -> u64 {
        let now = self.shared.clock.now();
        let expires_at = (ttl > 0).then(|| now + SimDuration::from_nanos(ttl));
        let value = repin_small(value, self.pin_threshold);
        let version = self.shared.versions.fetch_add(1, Ordering::Relaxed) + 1;
        let li = self.local_shard(key);
        if let Some(shard) = self.shards.get_mut(li) {
            shard.insert_value(key, version, value, now, expires_at);
        }
        version
    }

    /// Owner-local share of a store-pushed invalidation batch; returns
    /// how many of the keys were actually cached.
    fn serve_invalidate(&mut self, keys: &[u64]) -> u64 {
        let mut applied = 0u64;
        for &key in keys {
            let li = self.local_shard(key);
            if let Some(shard) = self.shards.get_mut(li) {
                if shard.apply_invalidate(key) {
                    applied += 1;
                }
            }
        }
        applied
    }

    /// Owner-local share of a store-pushed update batch; returns how
    /// many entries were re-freshened. With `install` set (the batch
    /// arrived on a handoff stream), absent keys are *installed* with a
    /// fresh serving version instead of counting as missed updates —
    /// that is the receiving half of key handoff, and the only path
    /// that relaxes the paper's update-in-place semantics.
    fn serve_update(&mut self, items: Vec<UpdateItem>, install: bool) -> u64 {
        let now = self.shared.clock.now();
        let mut applied = 0u64;
        for item in items {
            let li = self.local_shard(item.key);
            let Some(shard) = self.shards.get_mut(li) else { continue };
            let value = repin_small(item.value, self.pin_threshold);
            let refreshed = if shard.contains(item.key) {
                let version = self.shared.versions.fetch_add(1, Ordering::Relaxed) + 1;
                shard.apply_update_value(item.key, version, value, now, None)
            } else if install {
                // Handoff install: the donor streamed a key this node
                // now owns. Fresh serving version from this node's
                // counter (the donor's versions are a different
                // domain), no TTL — fresh until invalidated/evicted,
                // exactly like a refetch install.
                let version = self.shared.versions.fetch_add(1, Ordering::Relaxed) + 1;
                shard.insert_value(item.key, version, value, now, None);
                self.shared.stats.handoff_in.fetch_add(1, Ordering::Relaxed);
                true
            } else {
                // Counts the missed update without burning a serving
                // version on a key that is not here.
                shard.apply_update_value(item.key, 0, value, now, None)
            };
            if refreshed {
                applied += 1;
            }
        }
        applied
    }

    /// Try to park a refused/missed bounded read on an origin refetch.
    /// `true` when the request was parked (the first parker of the key
    /// also queued the `FetchReq` — flushed at end of tick); `false`
    /// when there is no origin or it is unreachable, in which case the
    /// caller answers the fallback directly.
    #[allow(clippy::too_many_arguments)]
    fn park(
        &mut self,
        home: usize,
        slot: usize,
        token: u64,
        id: RequestId,
        key: u64,
        fallback_status: GetStatus,
        fallback_age: u64,
    ) -> bool {
        let Some(ctx) = self.origin.as_mut() else { return false };
        if !ctx.ensure_link() {
            // Origin down and the retry backoff running: degrade now.
            self.shared.stats.origin_errors.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let waiter = Waiter { home, slot, token, id, fallback_status, fallback_age };
        match ctx.table.park(key, waiter) {
            Park::Fetch => {
                self.shared.stats.refetches.fetch_add(1, Ordering::Relaxed);
                // ensure_link() above guarantees the link is up; the if-let
                // keeps this hot path structurally panic-free regardless.
                if let Some(link) = ctx.link.as_mut() {
                    link.io.queue(&Message::FetchReq { key });
                }
            }
            Park::Coalesced => {
                self.shared.stats.refetch_coalesced.fetch_add(1, Ordering::Relaxed);
            }
        }
        true
    }
}

/// How many entries ride each handoff `Update` batch: big enough to
/// amortise the per-batch ack round-trip, small enough to keep frames
/// far from the codec's size cap.
const HANDOFF_CHUNK: usize = 512;

/// Connect timeout for handoff/announce destinations. A member that
/// cannot be reached in this window is skipped — its keys degrade to
/// cold misses, never to a stuck streamer.
const HANDOFF_CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// The handoff streamer: one background thread per server doing all the
/// *blocking* membership I/O — announcing view changes to peers and
/// streaming moved keys to their new owners — so the event loops never
/// wait on a peer's socket. Commands arrive from the loops over an
/// mpsc channel; the thread exits when every sender is gone (server
/// teardown). Failures are deliberately silent: handoff is an
/// optimisation, and a dead peer's share of keys simply misses cold at
/// its next owner.
fn run_handoff_streamer(rx: mpsc::Receiver<HandoffCmd>, stats: Arc<ServerStats>) {
    // Cached connections per destination, with a per-destination
    // sequence counter for the Update/Ack machinery.
    let mut conns: HashMap<String, (FramedStream<TcpStream>, u64)> = HashMap::new();
    while let Ok(cmd) = rx.recv() {
        let (dest, epoch, members, items) = match cmd {
            HandoffCmd::Stream { dest, epoch, members, items } => {
                (dest, epoch, members, Some(items))
            }
            HandoffCmd::Announce { dest, epoch, members } => (dest, epoch, members, None),
        };
        if stream_to(&mut conns, &dest, epoch, &members, items.as_deref(), &stats).is_err() {
            // Peer unreachable or confused: drop the cached connection
            // and move on. No retry — a newer epoch will re-announce,
            // and unmoved keys are cold misses by design.
            conns.remove(&dest);
        }
    }
}

/// One announce-or-stream exchange with `dest`: `RingUpdate` →
/// `RingAck`, then (when streaming) chunked `Update` → `Ack` rounds
/// closed by a fire-and-forget `HandoffDone`.
fn stream_to(
    conns: &mut HashMap<String, (FramedStream<TcpStream>, u64)>,
    dest: &str,
    epoch: u64,
    members: &[String],
    items: Option<&[UpdateItem]>,
    stats: &ServerStats,
) -> io::Result<()> {
    if !conns.contains_key(dest) {
        let addr = dest.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "member name resolves to no address")
        })?;
        let stream = TcpStream::connect_timeout(&addr, HANDOFF_CONNECT_TIMEOUT)?;
        stream.set_nodelay(true)?;
        conns.insert(dest.to_string(), (FramedStream::new(stream), 0));
    }
    let Some((framed, next_seq)) = conns.get_mut(dest) else { return Ok(()) };
    // Announce the view first: this flips the receiving connection into
    // install mode and lets the peer adopt the epoch if it missed it.
    framed.send(&Message::RingUpdate { epoch, members: members.to_vec() })?;
    match framed.recv()? {
        Some(Message::RingAck { .. }) => {}
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "expected RingAck")),
    }
    let Some(items) = items else { return Ok(()) };
    let mut moved = 0u64;
    for chunk in items.chunks(HANDOFF_CHUNK) {
        *next_seq += 1;
        let seq = *next_seq;
        framed.send(&Message::Update { seq, items: chunk.to_vec() })?;
        match framed.recv()? {
            Some(Message::Ack { seq: acked }) if acked == seq => moved += chunk.len() as u64,
            _ => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "expected handoff Ack"))
            }
        }
    }
    framed.send(&Message::HandoffDone { epoch, keys: moved })?;
    stats.handoff_out.fetch_add(moved, Ordering::Relaxed);
    Ok(())
}

/// Put an accepted socket into non-blocking mode and wrap it for the
/// reactor.
fn register(stream: TcpStream, token: u64) -> io::Result<Conn> {
    stream.set_nodelay(true)?;
    stream.set_nonblocking(true)?;
    let fd = stream.as_raw_fd();
    Ok(Conn {
        io: NonBlockingFramedStream::new(stream),
        fd,
        token,
        closing: false,
        in_flight: 0,
        handoff: false,
    })
}
