//! The event-driven TCP cache server.
//!
//! A small poll-based reactor replaces the original thread-per-connection
//! design: one blocking accept thread hands sockets to a configurable
//! number of **event-loop threads**, each of which multiplexes all of its
//! connections over non-blocking I/O with a [`minipoll::PollSet`] (a
//! vendored `poll(2)` wrapper — no external runtime). One event-loop
//! thread comfortably sustains thousands of concurrent connections; the
//! thread count scales service capacity across cores, not connection
//! count.
//!
//! Per connection the reactor keeps a [`NonBlockingFramedStream`]: reads
//! accumulate into the streaming codec until frames complete, responses
//! queue into an outbound buffer and drain as the socket accepts them, so
//! a slow reader never blocks the loop. Requests are processed in arrival
//! order per connection and each response echoes its request's
//! [`fresca_net::RequestId`], which is what lets clients pipeline many
//! requests on one connection and match responses by id.
//!
//! Freshness is enforced *at the serving boundary*, per the paper's
//! argument: a `PutReq` installs its per-key TTL, and a `GetReq`'s
//! max-staleness bound decides between served-fresh, served-stale,
//! refused, and miss — the decision travels back on the wire as a
//! [`GetStatus`] so the client can count staleness violations end-to-end.
//!
//! The same socket also accepts the **store path**: a store-push node
//! (see [`crate::push`]) sends batched `Invalidate { seq, keys }` /
//! `Update { seq, items }` frames; the node applies each batch to its
//! `ShardedCache` under the per-key shard locks and answers
//! `Ack { seq }` — the paper's write-triggered freshness pipeline
//! running against a real cache node instead of the simulator.
//!
//! ## The refetch path
//!
//! With [`ServerConfig::origin`] set, a bounded read that would come
//! back `RefusedStale` or `Miss` does not answer at all — the reactor
//! *parks* the request on its in-flight-refetch table
//! ([`fresca_cache::refetch::RefetchTable`]) and asks the origin for
//! the key over a per-event-loop non-blocking connection. Concurrent
//! readers of the same key coalesce onto the one in-flight fetch
//! (dogpile guard); when the `FetchResp` arrives the entry is
//! installed like a put and every parked reader is answered
//! `Fresh` at age 0. The event loop never blocks on the origin:
//! parked requests cost a table entry, unrelated keys keep serving,
//! and if the origin connection dies every parked reader immediately
//! receives the refusal/miss it would have gotten without an origin
//! (counted in `origin_errors`), with reconnection retried on a
//! timer. Refetching through the origin is also the paper's §3.1
//! backchannel — the fetch clears the key's invalidation-suppression
//! mark at the store — and the loop batches per-key read counts back
//! to the origin as `ReadStats` frames, which is what feeds the
//! adaptive invalidate-vs-update policy's `E[W]` estimator.

use crate::ServeClock;
use bytes::Bytes;
use fresca_cache::refetch::{Park, RefetchTable};
use fresca_cache::{BoundedGet, CacheConfig, ShardedCache};
use fresca_net::{GetStatus, Message, NonBlockingFramedStream, PollRecv, ReadStat, RequestId};
use fresca_sim::SimDuration;
use minipoll::{Interest, PollSet, Readiness};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Cache capacity and eviction policy.
    pub cache: CacheConfig,
    /// Number of cache shards (rounded up to a power of two).
    pub shards: usize,
    /// Number of event-loop threads connections are multiplexed onto
    /// (round-robin at accept time). Each loop serves all of its
    /// connections from one thread; raise this to spread request
    /// processing across cores, not to admit more connections.
    pub event_loops: usize,
    /// Origin endpoint to refetch refused/missed keys through (see the
    /// module docs). `None` — the default — answers refusals and misses
    /// directly, exactly as before.
    pub origin: Option<SocketAddr>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cache: CacheConfig::default(),
            shards: 16,
            event_loops: 2,
            origin: None,
        }
    }
}

/// Monotonically updated serving counters, shared across event-loop
/// threads. Relaxed ordering everywhere: these are statistics, not
/// synchronisation.
#[derive(Debug, Default)]
struct ServerStats {
    gets: AtomicU64,
    puts: AtomicU64,
    fresh: AtomicU64,
    stale_served: AtomicU64,
    refused: AtomicU64,
    misses: AtomicU64,
    push_batches: AtomicU64,
    keys_invalidated: AtomicU64,
    keys_updated: AtomicU64,
    connections: AtomicU64,
    open_connections: AtomicU64,
    protocol_errors: AtomicU64,
    refetches: AtomicU64,
    refetch_coalesced: AtomicU64,
    origin_errors: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// `GetReq`s handled.
    pub gets: u64,
    /// `PutReq`s handled.
    pub puts: u64,
    /// Reads served fresh (within TTL and bound).
    pub fresh: u64,
    /// Reads served stale (past TTL, within the request's bound).
    pub stale_served: u64,
    /// Reads refused (entry older than the bound, or invalidated).
    pub refused: u64,
    /// Reads that found no entry.
    pub misses: u64,
    /// Store-pushed `Invalidate`/`Update` batches acknowledged.
    pub push_batches: u64,
    /// Keys marked stale by store-pushed `Invalidate` batches (present
    /// keys only; invalidations of uncached keys are not counted here).
    pub keys_invalidated: u64,
    /// Cached entries re-freshened by store-pushed `Update` batches.
    pub keys_updated: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Connections currently registered with an event loop.
    pub open_connections: u64,
    /// Connections dropped for sending non-serving-path or malformed
    /// frames.
    pub protocol_errors: u64,
    /// Origin fetches issued for refused/missed bounded reads (one per
    /// refetch epoch — coalesced readers do not add here).
    pub refetches: u64,
    /// Bounded reads that coalesced onto an already-in-flight refetch
    /// of their key instead of issuing another origin fetch.
    pub refetch_coalesced: u64,
    /// Reads answered with their fallback refusal/miss because the
    /// origin was unreachable or its connection died mid-fetch.
    pub origin_errors: u64,
}

impl ServerStats {
    fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            fresh: self.fresh.load(Ordering::Relaxed),
            stale_served: self.stale_served.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            push_batches: self.push_batches.load(Ordering::Relaxed),
            keys_invalidated: self.keys_invalidated.load(Ordering::Relaxed),
            keys_updated: self.keys_updated.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            refetches: self.refetches.load(Ordering::Relaxed),
            refetch_coalesced: self.refetch_coalesced.load(Ordering::Relaxed),
            origin_errors: self.origin_errors.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Display for ServerStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gets={} puts={} fresh={} stale_served={} refused={} misses={} \
             refetches={} coalesced={} origin_errs={} \
             push_batches={} keys_invalidated={} keys_updated={} \
             conns={} open={} proto_errs={}",
            self.gets,
            self.puts,
            self.fresh,
            self.stale_served,
            self.refused,
            self.misses,
            self.refetches,
            self.refetch_coalesced,
            self.origin_errors,
            self.push_batches,
            self.keys_invalidated,
            self.keys_updated,
            self.connections,
            self.open_connections,
            self.protocol_errors
        )
    }
}

/// Everything an event loop needs to dispatch requests.
struct Shared {
    cache: Arc<ShardedCache>,
    stats: Arc<ServerStats>,
    // One global version counter: versions are monotone across all keys,
    // which is stronger than the per-key monotonicity clients rely on.
    versions: AtomicU64,
    clock: ServeClock,
    stop: AtomicBool,
}

/// Accept-side handle to one event loop: where to park new sockets and
/// how to wake the loop to collect them.
struct LoopHandle {
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    // Writing one byte wakes the loop's poll; non-blocking, so a full
    // pipe (wake already pending) is fine to ignore.
    wake_tx: UnixStream,
    join: JoinHandle<()>,
}

impl LoopHandle {
    fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1]);
    }
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::shutdown`] to stop the accept and event-loop threads.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_loop: Option<JoinHandle<()>>,
    loops: Vec<LoopHandle>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for LoopHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopHandle").finish_non_exhaustive()
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
/// serving in background threads. Returns once the listener is bound, so
/// clients may connect immediately.
pub fn spawn<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        cache: Arc::new(ShardedCache::new(config.cache, config.shards)),
        stats: Arc::new(ServerStats::default()),
        versions: AtomicU64::new(0),
        clock: ServeClock::start(),
        stop: AtomicBool::new(false),
    });

    let mut loops = Vec::new();
    for _ in 0..config.event_loops.max(1) {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let inbox = Arc::new(Mutex::new(Vec::new()));
        let join = {
            let (inbox, shared) = (Arc::clone(&inbox), Arc::clone(&shared));
            let origin = config.origin;
            std::thread::spawn(move || event_loop(wake_rx, &inbox, &shared, origin))
        };
        loops.push(LoopHandle { inbox, wake_tx, join });
    }

    let accept_loop = {
        let shared = Arc::clone(&shared);
        let mut targets: Vec<(Arc<Mutex<Vec<TcpStream>>>, UnixStream)> = loops
            .iter()
            .map(|l| Ok((Arc::clone(&l.inbox), l.wake_tx.try_clone()?)))
            .collect::<io::Result<_>>()?;
        std::thread::spawn(move || {
            let mut next = 0usize;
            for conn in listener.incoming() {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(conn) = conn else { continue };
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                shared.stats.open_connections.fetch_add(1, Ordering::Relaxed);
                let n = targets.len();
                let (inbox, wake) = &mut targets[next % n];
                next += 1;
                inbox.lock().push(conn);
                let _ = wake.write(&[1]);
            }
        })
    };

    Ok(ServerHandle { addr, shared, accept_loop: Some(accept_loop), loops })
}

impl ServerHandle {
    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The shared cache — exposed so operators (and tests) can apply
    /// backend-originated invalidations or inspect entry ages directly.
    pub fn cache(&self) -> &Arc<ShardedCache> {
        &self.shared.cache
    }

    /// The server's clock, for callers that want to interpret entry ages
    /// on the server's timeline.
    pub fn clock(&self) -> ServeClock {
        self.shared.clock
    }

    /// Number of event-loop threads serving connections.
    pub fn event_loops(&self) -> usize {
        self.loops.len()
    }

    /// Stop the server: the accept thread and every event-loop thread are
    /// joined, closing all established connections. Requests already
    /// received are answered before their connection closes only if their
    /// responses were already written; clients with requests in flight
    /// observe EOF.
    pub fn shutdown(mut self) -> ServerStatsSnapshot {
        self.shared.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_loop.take() {
            let _ = h.join();
        }
        for l in &self.loops {
            l.wake();
        }
        for l in self.loops.drain(..) {
            let _ = l.join.join();
        }
        self.shared.stats.snapshot()
    }
}

/// One registered connection: the framed transport plus the raw fd it
/// polls under.
struct Conn {
    io: NonBlockingFramedStream<TcpStream>,
    fd: RawFd,
    /// Loop-unique identity for this registration. Parked refetch
    /// waiters name their connection by `(slot, token)`; the token is
    /// what stops a reply from landing on an unrelated connection that
    /// reused the slot after the original closed.
    token: u64,
    /// No more requests will be read (clean EOF — possibly a half-close
    /// — or a protocol violation), but replies already queued still
    /// drain before the connection is dropped. The blocking server
    /// answered every request it had read; the reactor keeps that
    /// property.
    closing: bool,
}

/// A parked bounded read, waiting on an origin refetch of its key. The
/// fallback fields reconstruct the reply the request would have gotten
/// with no origin, for delivery if the fetch fails.
struct Waiter {
    slot: usize,
    token: u64,
    id: RequestId,
    fallback_status: GetStatus,
    fallback_age: u64,
}

/// The non-blocking origin connection one event loop refetches through.
struct OriginLink {
    io: NonBlockingFramedStream<TcpStream>,
    fd: RawFd,
}

/// Per-event-loop origin state: the link (when up), the in-flight
/// refetch table, and the read-count batch owed to the origin's
/// `E[W]` estimator.
struct OriginCtx {
    addr: SocketAddr,
    link: Option<OriginLink>,
    /// Don't re-attempt a failed connect before this instant.
    retry_at: Option<Instant>,
    table: RefetchTable<Waiter>,
    read_counts: HashMap<u64, u32>,
    reads_pending: u32,
}

/// How long a (blocking, inline) origin connect attempt may take. Kept
/// short: it runs on the event-loop thread when a park finds the link
/// down and the retry timer expired.
const ORIGIN_CONNECT_TIMEOUT: Duration = Duration::from_millis(100);

/// Backoff between origin connect attempts. While it runs, refused and
/// missed reads degrade to their fallback replies immediately.
const ORIGIN_RETRY: Duration = Duration::from_secs(1);

/// Flush the pending read-count batch to the origin once this many
/// reads accumulate…
const READ_STATS_FLUSH_READS: u32 = 1024;

/// …or once this many distinct keys do, whichever comes first.
const READ_STATS_FLUSH_KEYS: usize = 256;

/// With the origin link down, stop hoarding read counts past this many
/// distinct keys — the estimator feed is advisory, memory is not.
const READ_STATS_MAX_BUFFERED_KEYS: usize = 4096;

impl OriginCtx {
    fn new(addr: SocketAddr) -> Self {
        OriginCtx {
            addr,
            link: None,
            retry_at: None,
            table: RefetchTable::new(),
            read_counts: HashMap::new(),
            reads_pending: 0,
        }
    }

    /// True when the origin link is up — connecting now if it is down
    /// and the retry backoff has expired. A failed attempt arms the
    /// backoff and returns false, so callers degrade immediately
    /// instead of queueing behind a dead endpoint.
    fn ensure_link(&mut self) -> bool {
        if self.link.is_some() {
            return true;
        }
        let now = Instant::now();
        if self.retry_at.is_some_and(|at| now < at) {
            return false;
        }
        match TcpStream::connect_timeout(&self.addr, ORIGIN_CONNECT_TIMEOUT)
            .and_then(|stream| {
                stream.set_nodelay(true)?;
                stream.set_nonblocking(true)?;
                Ok(stream)
            }) {
            Ok(stream) => {
                let fd = stream.as_raw_fd();
                self.link = Some(OriginLink { io: NonBlockingFramedStream::new(stream), fd });
                self.retry_at = None;
                true
            }
            Err(_) => {
                self.retry_at = Some(now + ORIGIN_RETRY);
                false
            }
        }
    }

    /// Count one read of `key` toward the next `ReadStats` batch.
    fn count_read(&mut self, key: u64) {
        *self.read_counts.entry(key).or_insert(0) += 1;
        self.reads_pending += 1;
    }

    /// Queue the pending read-count batch on the link when it is due
    /// (or shed it when the link is down and the buffer outgrew its
    /// cap). The caller flushes the link afterwards.
    fn queue_read_stats(&mut self) {
        match &mut self.link {
            None => {
                if self.read_counts.len() > READ_STATS_MAX_BUFFERED_KEYS {
                    self.read_counts.clear();
                    self.reads_pending = 0;
                }
            }
            Some(link) => {
                if self.reads_pending >= READ_STATS_FLUSH_READS
                    || self.read_counts.len() >= READ_STATS_FLUSH_KEYS
                {
                    let entries: Vec<ReadStat> = self
                        .read_counts
                        .drain()
                        .map(|(key, reads)| ReadStat { key, reads })
                        .collect();
                    self.reads_pending = 0;
                    if !entries.is_empty() {
                        link.io.queue(&Message::ReadStats { entries });
                    }
                }
            }
        }
    }
}

/// Read-side backpressure: while a connection has more than this many
/// unsent response bytes buffered, the reactor stops reading (and thus
/// accepting) further requests from it until the client drains its side.
/// Bounds per-connection server memory at roughly this plus one maximal
/// response.
const OUTBOUND_HIGH_WATER: usize = 1 << 20;

/// Fairness: at most this many requests are processed per connection per
/// poll tick, so one firehose connection cannot starve its event-loop
/// neighbours.
const MAX_FRAMES_PER_TICK: usize = 128;

/// The reactor: multiplex every connection assigned to this loop over one
/// `poll(2)` set. Index 0 of the set is always the wake pipe; the origin
/// link (when configured and up) takes index 1; connection slots follow.
/// The loop exits when the shared stop flag is set.
fn event_loop(
    mut wake_rx: UnixStream,
    inbox: &Mutex<Vec<TcpStream>>,
    shared: &Shared,
    origin: Option<SocketAddr>,
) {
    let wake_fd = wake_rx.as_raw_fd();
    // Slot-indexed connection table; `None` slots are free and reused.
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_token: u64 = 0;
    let mut poll = PollSet::new();
    // poll index -> conn slot for this tick (index 0 is the wake pipe).
    let mut slot_of: Vec<usize> = Vec::new();
    // One read-scratch buffer shared by every connection on this loop:
    // it holds no per-stream state, so idle connections cost no
    // read-buffer memory.
    let mut scratch = vec![0u8; 64 * 1024];
    let mut origin_ctx = origin.map(OriginCtx::new);
    if let Some(ctx) = &mut origin_ctx {
        // Dial the origin eagerly so the first refused read parks
        // instead of paying the connect on its own request path.
        ctx.ensure_link();
    }

    loop {
        poll.clear();
        slot_of.clear();
        poll.push(wake_fd, Interest::READABLE);
        // A connection has *backlog* when complete frames already sit in
        // its decoder (the per-tick budget cut servicing short) and it is
        // under the outbound high-water mark. Such connections must be
        // serviced this tick even if their descriptor never becomes
        // readable again, so backlog forces a zero-timeout poll.
        let mut backlog = false;
        // The origin link polls at index 1 when present: always for
        // reads (a FetchResp can arrive any tick), for writes while
        // frames are buffered outbound.
        let link_polled = match origin_ctx.as_ref().and_then(|c| c.link.as_ref()) {
            Some(link) => {
                let mut interest = Interest::READABLE;
                if link.io.wants_write() {
                    interest = interest.and(Interest::WRITABLE);
                }
                backlog |= link.io.has_buffered_frame();
                poll.push(link.fd, interest);
                true
            }
            None => false,
        };
        let base = 1 + usize::from(link_polled);
        for (slot, conn) in conns.iter().enumerate() {
            let Some(conn) = conn else { continue };
            let reading = !conn.closing && conn.io.pending_out() <= OUTBOUND_HIGH_WATER;
            backlog |= reading && conn.io.has_buffered_frame();
            // Read interest only while under the outbound high-water
            // mark (a client that won't drain its responses doesn't get
            // to submit more requests) and not closing.
            let mut interest = if reading { Interest::READABLE } else { Interest::WRITABLE };
            if conn.io.wants_write() {
                interest = interest.and(Interest::WRITABLE);
            }
            poll.push(conn.fd, interest);
            slot_of.push(slot);
        }
        let timeout = if backlog { Some(Duration::ZERO) } else { None };
        if poll.poll(timeout).is_err() {
            // poll(2) only fails for ENOMEM/EFAULT/EINVAL; none are
            // recoverable from here.
            close_all(&conns, inbox, shared);
            return;
        }

        if poll.readiness(0).readable() {
            // Drain the wake pipe (many wakes coalesce into one drain).
            let mut buf = [0u8; 64];
            while matches!(wake_rx.read(&mut buf), Ok(n) if n > 0) {}
            if shared.stop.load(Ordering::Acquire) {
                close_all(&conns, inbox, shared);
                return;
            }
            // Take the batch out under the lock, register after releasing
            // it: register() does two syscalls per socket, and the accept
            // thread must not stall on the mutex during bursts.
            let pending = std::mem::take(&mut *inbox.lock());
            for stream in pending {
                next_token += 1;
                match register(stream, next_token) {
                    Ok(conn) => match free.pop() {
                        Some(slot) => conns[slot] = Some(conn),
                        None => conns.push(Some(conn)),
                    },
                    Err(_) => {
                        shared.stats.open_connections.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
        }

        // Drain origin FetchResps first: completed refetches answer
        // their parked readers before this tick's new requests are
        // serviced, so a just-installed key is immediately servable.
        if link_polled {
            let readiness = poll.readiness(1);
            let buffered = origin_ctx
                .as_ref()
                .is_some_and(|c| c.link.as_ref().is_some_and(|l| l.io.has_buffered_frame()));
            if readiness.any() || buffered {
                if let Some(ctx) = &mut origin_ctx {
                    drain_origin(ctx, &mut conns, &mut free, shared, &mut scratch);
                }
            }
        }

        for (i, &slot) in slot_of.iter().enumerate() {
            let readiness = poll.readiness(base + i);
            // Registered slots stay populated for the whole tick; a
            // vacant slot here would be a reactor bug, but the serving
            // loop must not be able to panic — skip it instead.
            let Some(conn) = conns[slot].as_mut() else { continue };
            if !readiness.any() && (conn.closing || !conn.io.has_buffered_frame()) {
                continue;
            }
            if !service(conn, slot, readiness, shared, &mut origin_ctx, &mut scratch) {
                conns[slot] = None;
                free.push(slot);
                shared.stats.open_connections.fetch_sub(1, Ordering::Relaxed);
            }
        }

        // End of tick: push the owed read-count batch and any FetchReqs
        // dispatch queued while servicing connections. A write failure
        // here is an origin outage — fail every parked waiter to its
        // fallback and start the reconnect backoff.
        if let Some(ctx) = &mut origin_ctx {
            ctx.queue_read_stats();
            if let Some(link) = &mut ctx.link {
                if link.io.wants_write() && link.io.flush().is_err() {
                    origin_outage(ctx, &mut conns, &mut free, shared);
                }
            }
        }
    }
}

/// Drain FetchResps from the origin link (bounded per tick, like any
/// other connection): install each fetched entry like a put and answer
/// every reader parked on its key with a fresh age-0 response. Any
/// transport error or protocol violation on the link is an outage.
fn drain_origin(
    ctx: &mut OriginCtx,
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    shared: &Shared,
    scratch: &mut [u8],
) {
    let mut budget = MAX_FRAMES_PER_TICK;
    let mut failed = false;
    while budget > 0 {
        budget -= 1;
        let Some(link) = ctx.link.as_mut() else { return };
        match link.io.poll_recv_with(scratch) {
            Ok(PollRecv::Msg(Message::FetchResp { key, version: _, value })) => {
                // Install under the shard lock with a serving version
                // from this node's counter (the store's version is a
                // different domain — see the Update arm of dispatch).
                // No TTL: the entry is fresh until invalidated/evicted.
                let now = shared.clock.now();
                let version = shared.cache.locked(key, |shard| {
                    let version = shared.versions.fetch_add(1, Ordering::Relaxed) + 1;
                    shard.insert_value(key, version, value.clone(), now, None);
                    version
                });
                for w in ctx.table.complete(key) {
                    shared.stats.fresh.fetch_add(1, Ordering::Relaxed);
                    let reply = Message::GetResp {
                        id: w.id,
                        key,
                        version,
                        age: 0,
                        value: value.clone(),
                        status: GetStatus::Fresh,
                    };
                    deliver(conns, free, shared, &w, &reply);
                }
            }
            Ok(PollRecv::WouldBlock) => return,
            Ok(PollRecv::Msg(_)) | Ok(PollRecv::Closed) | Err(_) => {
                failed = true;
                break;
            }
        }
    }
    if failed {
        origin_outage(ctx, conns, free, shared);
    }
}

/// The origin connection died: drop the link, arm the reconnect
/// backoff, and answer every parked reader with the refusal/miss it
/// would have gotten without an origin.
fn origin_outage(
    ctx: &mut OriginCtx,
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    shared: &Shared,
) {
    ctx.link = None;
    ctx.retry_at = Some(Instant::now() + ORIGIN_RETRY);
    for (key, waiters) in ctx.table.fail_all() {
        for w in waiters {
            shared.stats.origin_errors.fetch_add(1, Ordering::Relaxed);
            match w.fallback_status {
                GetStatus::Miss => shared.stats.misses.fetch_add(1, Ordering::Relaxed),
                _ => shared.stats.refused.fetch_add(1, Ordering::Relaxed),
            };
            let reply = Message::GetResp {
                id: w.id,
                key,
                version: 0,
                value: Bytes::new(),
                age: w.fallback_age,
                status: w.fallback_status,
            };
            deliver(conns, free, shared, &w, &reply);
        }
    }
}

/// Queue `reply` on the waiter's connection and push it toward the
/// socket immediately — a parked request's poll tick is long gone, so
/// nothing else would flush this connection promptly. Skips waiters
/// whose connection closed (the slot token no longer matches); drops
/// the connection on a transport error, exactly like `service`.
fn deliver(
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    shared: &Shared,
    w: &Waiter,
    reply: &Message,
) {
    let Some(conn) = conns[w.slot].as_mut() else { return };
    if conn.token != w.token {
        return;
    }
    conn.io.queue(reply);
    if conn.io.flush().is_err() {
        conns[w.slot] = None;
        free.push(w.slot);
        shared.stats.open_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Account for every connection this exiting loop force-closes: live
/// slots plus sockets accepted but still waiting in the inbox (both were
/// counted into `open_connections` at accept time).
fn close_all(conns: &[Option<Conn>], inbox: &Mutex<Vec<TcpStream>>, shared: &Shared) {
    let live = conns.iter().filter(|c| c.is_some()).count() + inbox.lock().len();
    shared.stats.open_connections.fetch_sub(live as u64, Ordering::Relaxed);
}

/// Put an accepted socket into non-blocking mode and wrap it for the
/// reactor.
fn register(stream: TcpStream, token: u64) -> io::Result<Conn> {
    stream.set_nodelay(true)?;
    stream.set_nonblocking(true)?;
    let fd = stream.as_raw_fd();
    Ok(Conn { io: NonBlockingFramedStream::new(stream), fd, token, closing: false })
}

/// What `dispatch` decided for one request.
enum Dispatch {
    /// Answer with this message.
    Reply(Message),
    /// No reply now: the request is parked on an in-flight origin
    /// refetch and will be answered when it completes (or fails).
    Parked,
    /// Not a request this node answers — protocol error, close after
    /// draining what was already queued.
    Close,
}

/// Service one ready connection: decode complete frames (bounded per
/// tick for fairness, and only while under the outbound high-water
/// mark), dispatch, queue replies, then write as much as the socket
/// accepts. Returns `false` when the connection should be dropped —
/// which, for a clean EOF or a protocol violation, only happens after
/// every already-queued reply has drained (a half-closing client still
/// receives its responses).
fn service(
    conn: &mut Conn,
    slot: usize,
    readiness: Readiness,
    shared: &Shared,
    origin: &mut Option<OriginCtx>,
    scratch: &mut [u8],
) -> bool {
    if !conn.closing && (readiness.readable() || readiness.error() || conn.io.has_buffered_frame())
    {
        let token = conn.token;
        let mut budget = MAX_FRAMES_PER_TICK;
        while budget > 0 && conn.io.pending_out() <= OUTBOUND_HIGH_WATER {
            budget -= 1;
            match conn.io.poll_recv_with(scratch) {
                Ok(PollRecv::Msg(msg)) => match dispatch(msg, shared, origin, slot, token) {
                    Dispatch::Reply(reply) => conn.io.queue(&reply),
                    Dispatch::Parked => {}
                    Dispatch::Close => {
                        // Not a request this node answers (neither
                        // serving-path nor store-path): the peer is
                        // confused or hostile either way; answer what
                        // preceded it, then close.
                        shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        conn.closing = true;
                        break;
                    }
                },
                Ok(PollRecv::WouldBlock) => break,
                Ok(PollRecv::Closed) => {
                    // Clean EOF, possibly a half-close with responses
                    // still owed: stop reading, drain, then drop.
                    conn.closing = true;
                    break;
                }
                Err(e) => {
                    if e.kind() == io::ErrorKind::InvalidData {
                        // Codec violation: frames are length-delimited so
                        // the stream is still aligned; deliver the
                        // replies already queued before closing.
                        shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        conn.closing = true;
                        break;
                    }
                    // Reset or EOF mid-frame: transport weather, the
                    // peer is gone — nothing left to deliver to.
                    return false;
                }
            }
        }
    }
    // Push queued replies; leftover bytes keep write interest registered
    // for the next tick. A closing connection lives exactly until its
    // last reply byte leaves.
    match conn.io.flush() {
        Ok(_) => !conn.closing || conn.io.wants_write(),
        Err(_) => false,
    }
}

/// Map one request onto the cache; [`Dispatch::Close`] for messages
/// that do not belong on a cache node's socket. Serving-path requests
/// (`GetReq`, `PutReq`) come from clients; store-path batches
/// (`Invalidate`, `Update`) come from a store-push node and are
/// acknowledged by `seq`; `StatsReq` comes from a load generator
/// pinning down the refetch counters.
fn dispatch(
    msg: Message,
    shared: &Shared,
    origin: &mut Option<OriginCtx>,
    slot: usize,
    token: u64,
) -> Dispatch {
    let stats = &shared.stats;
    match msg {
        Message::GetReq { id, key, max_staleness } => {
            stats.gets.fetch_add(1, Ordering::Relaxed);
            if let Some(ctx) = origin.as_mut() {
                // Every read feeds the origin's E[W] estimator — parked
                // or answered, each counts exactly once.
                ctx.count_read(key);
            }
            let now = shared.clock.now();
            let bound = (max_staleness != u64::MAX).then(|| SimDuration::from_nanos(max_staleness));
            // The bounded read clones the entry under its shard lock —
            // for the value that is a refcount bump on the cached Bytes
            // handle — and the lock is released before the reply is
            // serialized or queued. The same handle then rides the
            // outbound segment queue, so a hit never copies the payload.
            let reply = match shared.cache.get_bounded(key, now, bound) {
                BoundedGet::Fresh(e) => {
                    stats.fresh.fetch_add(1, Ordering::Relaxed);
                    Message::GetResp {
                        id,
                        key,
                        version: e.version,
                        age: e.age(now).as_nanos(),
                        value: e.value,
                        status: GetStatus::Fresh,
                    }
                }
                BoundedGet::ServedStale(e) => {
                    stats.stale_served.fetch_add(1, Ordering::Relaxed);
                    Message::GetResp {
                        id,
                        key,
                        version: e.version,
                        age: e.age(now).as_nanos(),
                        value: e.value,
                        status: GetStatus::ServedStale,
                    }
                }
                BoundedGet::Refused(e) => {
                    let age = e.age(now).as_nanos();
                    match park(origin, shared, key, slot, token, id, GetStatus::RefusedStale, age)
                    {
                        Some(d) => return d,
                        None => {
                            stats.refused.fetch_add(1, Ordering::Relaxed);
                            // No value travels back on a refusal — only
                            // the entry's age, so the client can see by
                            // how much the bound was missed.
                            Message::GetResp {
                                id,
                                key,
                                version: 0,
                                value: Bytes::new(),
                                age,
                                status: GetStatus::RefusedStale,
                            }
                        }
                    }
                }
                BoundedGet::Miss => {
                    match park(origin, shared, key, slot, token, id, GetStatus::Miss, 0) {
                        Some(d) => return d,
                        None => {
                            stats.misses.fetch_add(1, Ordering::Relaxed);
                            Message::GetResp {
                                id,
                                key,
                                version: 0,
                                value: Bytes::new(),
                                age: 0,
                                status: GetStatus::Miss,
                            }
                        }
                    }
                }
            };
            Dispatch::Reply(reply)
        }
        Message::StatsReq => Dispatch::Reply(Message::StatsResp {
            refetches: stats.refetches.load(Ordering::Relaxed),
            refetch_coalesced: stats.refetch_coalesced.load(Ordering::Relaxed),
            origin_errors: stats.origin_errors.load(Ordering::Relaxed),
        }),
        Message::PutReq { id, key, value, ttl } => {
            stats.puts.fetch_add(1, Ordering::Relaxed);
            let now = shared.clock.now();
            let expires_at = (ttl > 0).then(|| now + SimDuration::from_nanos(ttl));
            // Version allocation and insert must be one atomic step: done
            // separately, two racing puts to the same key (from different
            // event loops) could install the older version over the newer
            // acked one. The value handle moves into the cache as-is —
            // it is the refcounted slice the codec cut from the receive
            // buffer, so the entire put path performs no payload copy.
            let version = shared.cache.locked(key, |shard| {
                let version = shared.versions.fetch_add(1, Ordering::Relaxed) + 1;
                shard.insert_value(key, version, value, now, expires_at);
                version
            });
            Dispatch::Reply(Message::PutResp { id, key, version })
        }
        Message::Invalidate { seq, keys } => {
            // A store-pushed batch: mark every cached entry in it stale
            // under its shard lock, then ack the whole batch by seq.
            // Keys the cache does not hold are no-ops (counted by the
            // cache as missed invalidations), exactly like the
            // simulation path.
            let mut applied = 0u64;
            for key in keys {
                if shared.cache.apply_invalidate(key) {
                    applied += 1;
                }
            }
            stats.keys_invalidated.fetch_add(applied, Ordering::Relaxed);
            stats.push_batches.fetch_add(1, Ordering::Relaxed);
            Dispatch::Reply(Message::Ack { seq })
        }
        Message::Update { seq, items } => {
            // A store-pushed refresh batch: re-freshen every cached
            // entry in it. The pushed item carries the *store's*
            // version, which lives in a different counter domain than
            // this node's serving versions — so the node allocates a
            // fresh serving version (under the shard lock, like a put)
            // for each entry it refreshes, keeping the global
            // monotonicity clients' anomaly checks rely on. Absent keys
            // do nothing, per the paper's update semantics; pushed
            // updates carry no TTL, so refreshed entries are fresh
            // until invalidated or evicted.
            let now = shared.clock.now();
            let mut applied = 0u64;
            for item in items {
                let refreshed = shared.cache.locked(item.key, |shard| {
                    if shard.contains(item.key) {
                        let version = shared.versions.fetch_add(1, Ordering::Relaxed) + 1;
                        shard.apply_update_value(item.key, version, item.value, now, None)
                    } else {
                        // Counts the missed update without burning a
                        // serving version on a key that is not here.
                        shard.apply_update_value(item.key, 0, item.value, now, None)
                    }
                });
                if refreshed {
                    applied += 1;
                }
            }
            stats.keys_updated.fetch_add(applied, Ordering::Relaxed);
            stats.push_batches.fetch_add(1, Ordering::Relaxed);
            Dispatch::Reply(Message::Ack { seq })
        }
        _ => Dispatch::Close,
    }
}

/// Try to park a refused/missed bounded read on an origin refetch.
/// `Some(Dispatch::Parked)` when the request was parked (the first
/// parker of the key also queued the `FetchReq` — flushed at end of
/// tick); `None` when there is no origin or it is unreachable, in
/// which case the caller answers the fallback directly.
#[allow(clippy::too_many_arguments)]
fn park(
    origin: &mut Option<OriginCtx>,
    shared: &Shared,
    key: u64,
    slot: usize,
    token: u64,
    id: RequestId,
    fallback_status: GetStatus,
    fallback_age: u64,
) -> Option<Dispatch> {
    let ctx = origin.as_mut()?;
    if !ctx.ensure_link() {
        // Origin down and the retry backoff running: degrade now.
        shared.stats.origin_errors.fetch_add(1, Ordering::Relaxed);
        return None;
    }
    let waiter = Waiter { slot, token, id, fallback_status, fallback_age };
    match ctx.table.park(key, waiter) {
        Park::Fetch => {
            shared.stats.refetches.fetch_add(1, Ordering::Relaxed);
            // ensure_link() above guarantees the link is up; the if-let
            // keeps this hot path structurally panic-free regardless.
            if let Some(link) = ctx.link.as_mut() {
                link.io.queue(&Message::FetchReq { key });
            }
        }
        Park::Coalesced => {
            shared.stats.refetch_coalesced.fetch_add(1, Ordering::Relaxed);
        }
    }
    Some(Dispatch::Parked)
}
