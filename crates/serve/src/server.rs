//! The threaded TCP cache server.
//!
//! One accept loop, one OS thread per connection — the classic blocking
//! memcached shape. Each connection speaks length-prefixed
//! [`Message`] frames over a [`FramedStream`]; requests dispatch against
//! one shared [`ShardedCache`], so no lock is held across I/O and
//! contention drops with shard count.
//!
//! Freshness is enforced *at the serving boundary*, per the paper's
//! argument: a `PutReq` installs its per-key TTL, and a `GetReq`'s
//! max-staleness bound decides between served-fresh, served-stale,
//! refused, and miss — the decision travels back on the wire as a
//! [`GetStatus`] so the client can count staleness violations end-to-end.

use crate::ServeClock;
use fresca_cache::{BoundedGet, CacheConfig, ShardedCache};
use fresca_net::{FramedStream, GetStatus, Message};
use fresca_sim::SimDuration;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Cache capacity and eviction policy.
    pub cache: CacheConfig,
    /// Number of cache shards (rounded up to a power of two).
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { cache: CacheConfig::default(), shards: 16 }
    }
}

/// Monotonically updated serving counters, shared across connection
/// threads. Relaxed ordering everywhere: these are statistics, not
/// synchronisation.
#[derive(Debug, Default)]
struct ServerStats {
    gets: AtomicU64,
    puts: AtomicU64,
    fresh: AtomicU64,
    stale_served: AtomicU64,
    refused: AtomicU64,
    misses: AtomicU64,
    connections: AtomicU64,
    protocol_errors: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// `GetReq`s handled.
    pub gets: u64,
    /// `PutReq`s handled.
    pub puts: u64,
    /// Reads served fresh (within TTL and bound).
    pub fresh: u64,
    /// Reads served stale (past TTL, within the request's bound).
    pub stale_served: u64,
    /// Reads refused (entry older than the bound, or invalidated).
    pub refused: u64,
    /// Reads that found no entry.
    pub misses: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Connections dropped for sending non-serving-path or malformed
    /// frames.
    pub protocol_errors: u64,
}

impl ServerStats {
    fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            fresh: self.fresh.load(Ordering::Relaxed),
            stale_served: self.stale_served.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Display for ServerStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gets={} puts={} fresh={} stale_served={} refused={} misses={} conns={} proto_errs={}",
            self.gets,
            self.puts,
            self.fresh,
            self.stale_served,
            self.refused,
            self.misses,
            self.connections,
            self.protocol_errors
        )
    }
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::shutdown`] to stop accepting and join the accept loop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    cache: Arc<ShardedCache>,
    stats: Arc<ServerStats>,
    clock: ServeClock,
    stop: Arc<AtomicBool>,
    accept_loop: Option<JoinHandle<()>>,
}

/// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
/// serving in background threads. Returns once the listener is bound, so
/// clients may connect immediately.
pub fn spawn<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let cache = Arc::new(ShardedCache::new(config.cache, config.shards));
    let stats = Arc::new(ServerStats::default());
    let clock = ServeClock::start();
    let stop = Arc::new(AtomicBool::new(false));
    // One global version counter: versions are monotone across all keys,
    // which is stronger than the per-key monotonicity clients rely on.
    let versions = Arc::new(AtomicU64::new(0));

    let accept_loop = {
        let (cache, stats, stop) = (Arc::clone(&cache), Arc::clone(&stats), Arc::clone(&stop));
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(conn) = conn else { continue };
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let cache = Arc::clone(&cache);
                let stats = Arc::clone(&stats);
                let versions = Arc::clone(&versions);
                std::thread::spawn(move || serve_conn(conn, &cache, &stats, &versions, clock));
            }
        })
    };

    Ok(ServerHandle { addr, cache, stats, clock, stop, accept_loop: Some(accept_loop) })
}

impl ServerHandle {
    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.stats.snapshot()
    }

    /// The shared cache — exposed so operators (and tests) can apply
    /// backend-originated invalidations or inspect entry ages directly.
    pub fn cache(&self) -> &Arc<ShardedCache> {
        &self.cache
    }

    /// The server's clock, for callers that want to interpret entry ages
    /// on the server's timeline.
    pub fn clock(&self) -> ServeClock {
        self.clock
    }

    /// Stop accepting connections and join the accept loop. Established
    /// connections keep being served until their clients disconnect.
    pub fn shutdown(mut self) -> ServerStatsSnapshot {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_loop.take() {
            let _ = h.join();
        }
        self.stats.snapshot()
    }
}

/// Per-connection request loop: decode a frame, dispatch, reply. Returns
/// when the peer disconnects or violates the protocol.
fn serve_conn(
    conn: TcpStream,
    cache: &ShardedCache,
    stats: &ServerStats,
    versions: &AtomicU64,
    clock: ServeClock,
) {
    let _ = conn.set_nodelay(true);
    let mut framed = FramedStream::new(conn);
    loop {
        let msg = match framed.recv() {
            Ok(Some(msg)) => msg,
            Ok(None) => return, // clean disconnect
            Err(e) => {
                // Only codec violations are the peer's fault; a reset or
                // an EOF mid-frame is transport weather, not protocol.
                if e.kind() == io::ErrorKind::InvalidData {
                    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        };
        let reply = match msg {
            Message::GetReq { key, max_staleness } => {
                stats.gets.fetch_add(1, Ordering::Relaxed);
                handle_get(cache, stats, clock, key, max_staleness)
            }
            Message::PutReq { key, value_size, ttl } => {
                stats.puts.fetch_add(1, Ordering::Relaxed);
                let now = clock.now();
                let expires_at = (ttl > 0).then(|| now + SimDuration::from_nanos(ttl));
                // Version allocation and insert must be one atomic step:
                // done separately, two racing puts to the same key could
                // install the older version over the newer acked one.
                let version = cache.locked(key, |shard| {
                    let version = versions.fetch_add(1, Ordering::Relaxed) + 1;
                    shard.insert(key, version, value_size, now, expires_at);
                    version
                });
                Message::PutResp { key, version }
            }
            // Anything else does not belong on the serving path.
            _ => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        if framed.send(&reply).is_err() {
            return;
        }
    }
}

fn handle_get(
    cache: &ShardedCache,
    stats: &ServerStats,
    clock: ServeClock,
    key: u64,
    max_staleness: u64,
) -> Message {
    let now = clock.now();
    let bound =
        (max_staleness != u64::MAX).then(|| SimDuration::from_nanos(max_staleness));
    match cache.get_bounded(key, now, bound) {
        BoundedGet::Fresh(e) => {
            stats.fresh.fetch_add(1, Ordering::Relaxed);
            Message::GetResp {
                key,
                version: e.version,
                value_size: e.value_size,
                age: e.age(now).as_nanos(),
                status: GetStatus::Fresh,
            }
        }
        BoundedGet::ServedStale(e) => {
            stats.stale_served.fetch_add(1, Ordering::Relaxed);
            Message::GetResp {
                key,
                version: e.version,
                value_size: e.value_size,
                age: e.age(now).as_nanos(),
                status: GetStatus::ServedStale,
            }
        }
        BoundedGet::Refused(e) => {
            stats.refused.fetch_add(1, Ordering::Relaxed);
            // No value travels back on a refusal — only the entry's age,
            // so the client can see by how much the bound was missed.
            Message::GetResp {
                key,
                version: 0,
                value_size: 0,
                age: e.age(now).as_nanos(),
                status: GetStatus::RefusedStale,
            }
        }
        BoundedGet::Miss => {
            stats.misses.fetch_add(1, Ordering::Relaxed);
            Message::GetResp { key, version: 0, value_size: 0, age: 0, status: GetStatus::Miss }
        }
    }
}
