//! Closed- and open-loop load generation against a running server, with
//! request pipelining and per-request latency percentiles.
//!
//! Both modes replay the same [`TimedOp`] schedule (a `fresca-workload`
//! trace mapped through [`fresca_workload::replay::ReplayConfig`]) over
//! [`PipelinedClient`] connections, so many requests ride each
//! connection concurrently and responses are matched back to requests by
//! [`RequestId`]:
//!
//! * **Closed loop** — `connections` worker threads each keep up to
//!   `pipeline` requests in flight back-to-back: offered load tracks
//!   service capacity, which is how you measure peak throughput.
//! * **Open loop** — one connection sends each operation at its
//!   scheduled deadline *without waiting for earlier responses*: offered
//!   load is fixed by the trace's (rescaled) arrival process. Latency is
//!   measured from the operation's **scheduled** send time to its
//!   completion, so queueing delay under overload is charged to the
//!   server instead of being silently absorbed by a stalled sender (the
//!   coordinated-omission trap the old one-in-flight client fell into).
//!
//! Every worker verifies what it reads: the server's versions are
//! globally monotone, so a served read whose version is older than the
//! last write this worker saw acknowledged for that key is a consistency
//! violation, counted in [`LoadReport::version_anomalies`]. Completions
//! are processed in arrival order, which on an in-order connection means
//! server-processing order, so the check stays exact under pipelining.
//!
//! **Cluster fan-out** ([`run_cluster`]): given several node addresses,
//! the schedule is partitioned by the same consistent-hash ring every
//! other cluster participant uses ([`crate::ring`]) and each node's
//! share is replayed against it concurrently — closed loop with
//! `connections` workers *per node*, open loop with one deadline-paced
//! connection per node. The result is a [`ClusterReport`]: one
//! [`LoadReport`] per node plus the merged aggregate (aggregate
//! percentiles are computed over the pooled samples, not averaged).

use crate::client::{PipelinedClient, Response};
use crate::ring::HashRing;
use fresca_net::{GetStatus, RequestId};
use fresca_workload::{TimedOp, WireOp};
use serde::Serialize;
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Load-generation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `connections` workers issue ops back-to-back (throughput probe).
    Closed {
        /// Number of concurrent connections (worker threads).
        connections: usize,
    },
    /// One connection paced by the schedule's timestamps (rate probe).
    Open,
}

/// Load generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadGenConfig {
    /// Closed or open loop.
    pub mode: Mode,
    /// Closed loop: maximum requests in flight per connection. `1`
    /// reproduces the old request/response lockstep; the open loop
    /// ignores this (its pipeline depth is set by the schedule).
    pub pipeline: usize,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig { mode: Mode::Closed { connections: 4 }, pipeline: 16 }
    }
}

/// What a load-generation run observed, end to end.
///
/// Serializes to JSON (see the `loadgen` binary's `--json` flag) so perf
/// trajectories can be tracked across commits.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct LoadReport {
    /// Wall-clock duration of the run in seconds.
    pub wall_secs: f64,
    /// Operations completed (gets + puts).
    pub ops: u64,
    /// Reads issued.
    pub gets: u64,
    /// Writes issued.
    pub puts: u64,
    /// Completed operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Reads served fresh.
    pub fresh: u64,
    /// Reads served stale-within-bound.
    pub stale_served: u64,
    /// Reads refused as `RefusedStale`: the entry existed but could not
    /// satisfy the staleness bound (or was invalidated). The per-status
    /// sibling of [`LoadReport::staleness_violations`] — same count,
    /// kept under both names so the status breakdown
    /// (fresh/stale_served/refused_stale/misses) reads uniformly.
    pub refused_stale: u64,
    /// Reads refused: the entry existed but could not satisfy the
    /// staleness bound. These are the run's *staleness violations* — the
    /// quantity the paper's freshness machinery exists to minimise.
    pub staleness_violations: u64,
    /// Reads that found no entry.
    pub misses: u64,
    /// Served reads ÷ issued reads.
    pub hit_ratio: f64,
    /// Served reads whose version regressed below a write this worker
    /// had seen acknowledged — should be zero.
    pub version_anomalies: u64,
    /// Mean request latency in microseconds.
    pub mean_latency_us: f64,
    /// Median request latency in microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile request latency in microseconds.
    pub p99_latency_us: f64,
    /// 99.9th-percentile request latency in microseconds.
    pub p999_latency_us: f64,
}

impl LoadReport {
    /// True when the run saw neither staleness violations nor version
    /// anomalies — the pass condition for smoke tests and CI.
    pub fn is_clean(&self) -> bool {
        self.staleness_violations == 0 && self.version_anomalies == 0
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} ops in {:.3}s  ({:.0} ops/s)",
            self.ops, self.wall_secs, self.ops_per_sec
        )?;
        writeln!(
            f,
            "latency: mean {:.1}us  p50 {:.1}us  p99 {:.1}us  p999 {:.1}us",
            self.mean_latency_us, self.p50_latency_us, self.p99_latency_us, self.p999_latency_us
        )?;
        writeln!(f, "reads: {} (hit ratio {:.2}%)", self.gets, 100.0 * self.hit_ratio)?;
        writeln!(
            f,
            "  status: {} Fresh / {} ServedStale / {} RefusedStale / {} Miss",
            self.fresh, self.stale_served, self.refused_stale, self.misses
        )?;
        writeln!(f, "writes: {}", self.puts)?;
        writeln!(
            f,
            "staleness violations: {}   version anomalies: {}",
            self.staleness_violations, self.version_anomalies
        )?;
        Ok(())
    }
}

/// Per-worker accumulator, merged into the final [`LoadReport`].
#[derive(Debug, Clone, Default)]
struct WorkerResult {
    gets: u64,
    puts: u64,
    fresh: u64,
    stale_served: u64,
    refused: u64,
    misses: u64,
    version_anomalies: u64,
    latencies_us: Vec<u64>,
}

impl WorkerResult {
    fn merge(&mut self, other: WorkerResult) {
        self.gets += other.gets;
        self.puts += other.puts;
        self.fresh += other.fresh;
        self.stale_served += other.stale_served;
        self.refused += other.refused;
        self.misses += other.misses;
        self.version_anomalies += other.version_anomalies;
        self.latencies_us.extend(other.latencies_us);
    }
}

/// One worker's bookkeeping for requests in flight: when each id was
/// (scheduled to be) sent, and the last acknowledged version per key.
#[derive(Debug, Default)]
struct Tracker {
    issued_at: HashMap<RequestId, Instant>,
    acked: HashMap<u64, u64>,
}

impl Tracker {
    fn issued(&mut self, id: RequestId, at: Instant) {
        self.issued_at.insert(id, at);
    }

    /// Fold one completion into the worker's counters.
    fn completed(
        &mut self,
        res: &mut WorkerResult,
        id: RequestId,
        resp: Response,
        now: Instant,
    ) -> io::Result<()> {
        let issued = self.issued_at.remove(&id).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response for unknown request {id}"),
            )
        })?;
        res.latencies_us.push(now.saturating_duration_since(issued).as_micros() as u64);
        match resp {
            Response::Get { key, outcome } => {
                match outcome.status {
                    GetStatus::Fresh => res.fresh += 1,
                    GetStatus::ServedStale => res.stale_served += 1,
                    GetStatus::RefusedStale => res.refused += 1,
                    GetStatus::Miss => res.misses += 1,
                }
                if outcome.is_served() {
                    if let Some(&expected) = self.acked.get(&key) {
                        if outcome.version < expected {
                            res.version_anomalies += 1;
                        }
                    }
                }
            }
            Response::Put { key, version } => {
                self.acked.insert(key, version);
            }
        }
        Ok(())
    }
}

fn submit(client: &mut PipelinedClient, op: &WireOp) -> io::Result<RequestId> {
    match *op {
        WireOp::Get { key, max_staleness } => client.submit_get(key, max_staleness),
        WireOp::Put { key, value_size, ttl } => client.submit_put(key, value_size, ttl),
    }
}

/// Replay `ops` against the server at `addr` and report what happened.
pub fn run(addr: SocketAddr, ops: &[TimedOp], config: &LoadGenConfig) -> io::Result<LoadReport> {
    let started = Instant::now();
    let merged = run_node(addr, ops, config, started)?;
    let wall = started.elapsed();
    Ok(build_report(merged, wall))
}

/// Replay `ops` against one node in the configured mode — the shared
/// engine under both the single-node [`run`] and the per-node workers
/// of [`run_cluster`].
fn run_node(
    addr: SocketAddr,
    ops: &[TimedOp],
    config: &LoadGenConfig,
    started: Instant,
) -> io::Result<WorkerResult> {
    match config.mode {
        Mode::Closed { connections } => {
            assert!(connections >= 1, "need at least one connection");
            let depth = config.pipeline.max(1);
            let results: Vec<io::Result<WorkerResult>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..connections)
                    .map(|w| {
                        s.spawn(move || {
                            // Strided partition: worker w takes ops w,
                            // w+N, w+2N, … so key locality and the
                            // read/write interleaving stay roughly
                            // uniform across workers.
                            run_closed(addr, ops.iter().skip(w).step_by(connections), depth)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("loadgen worker panicked")).collect()
            });
            let mut merged = WorkerResult::default();
            for r in results {
                merged.merge(r?);
            }
            Ok(merged)
        }
        Mode::Open => run_open(addr, ops, started),
    }
}

/// One node's slice of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NodeReport {
    /// The node's address as given on the command line — also its ring
    /// name, so this is the spelling placement was computed from.
    pub addr: String,
    /// What this node's share of the schedule observed.
    pub report: LoadReport,
}

/// What a cluster fan-out run observed: per-node reports plus the
/// merged aggregate. Serializes to JSON for the `loadgen --json` flag.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterReport {
    /// Everything merged: counters summed, percentiles over the pooled
    /// latency samples of all nodes.
    pub aggregate: LoadReport,
    /// Per-node breakdown, in member-list order.
    pub nodes: Vec<NodeReport>,
}

impl ClusterReport {
    /// True when no node saw staleness violations or version anomalies.
    pub fn is_clean(&self) -> bool {
        self.aggregate.is_clean()
    }
}

impl std::fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.aggregate)?;
        writeln!(f, "per node:")?;
        for n in &self.nodes {
            writeln!(
                f,
                "  {}: {} ops ({:.0}/s)  status {}/{}/{}/{} F/SS/RS/M  p99 {:.1}us  anomalies {}",
                n.addr,
                n.report.ops,
                n.report.ops_per_sec,
                n.report.fresh,
                n.report.stale_served,
                n.report.refused_stale,
                n.report.misses,
                n.report.p99_latency_us,
                n.report.version_anomalies
            )?;
        }
        Ok(())
    }
}

/// Fan a schedule out across a consistent-hash cluster: each op goes to
/// the node owning its key (the same ring placement every other cluster
/// participant computes), all nodes are driven concurrently, and the
/// result carries both per-node and merged aggregate reports.
///
/// `nodes` pairs each member's ring name (the address string as typed —
/// all participants must spell it identically) with its resolved socket
/// address; `vnodes` must match the cluster's ring configuration. In
/// closed-loop mode each node gets its own `connections` workers; in
/// open-loop mode each node gets one connection paced by the shared
/// schedule clock, so cross-node ordering follows the trace.
pub fn run_cluster(
    nodes: &[(String, SocketAddr)],
    ops: &[TimedOp],
    config: &LoadGenConfig,
    vnodes: usize,
) -> io::Result<ClusterReport> {
    let names: Vec<&str> = nodes.iter().map(|(name, _)| name.as_str()).collect();
    let ring = HashRing::try_from_members(vnodes, &names)?;
    // Partition the schedule by ring owner, preserving each node's
    // schedule order (open-loop pacing depends on it).
    let mut per_node: Vec<Vec<TimedOp>> = vec![Vec::new(); nodes.len()];
    for op in ops {
        let owner = ring.node_index_for(op.op.key()).expect("non-empty ring");
        per_node[owner].push(*op);
    }
    let started = Instant::now();
    let results: Vec<io::Result<WorkerResult>> = std::thread::scope(|s| {
        let handles: Vec<_> = nodes
            .iter()
            .zip(&per_node)
            .map(|(&(_, addr), node_ops)| {
                s.spawn(move || run_node(addr, node_ops, config, started))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("cluster node worker panicked")).collect()
    });
    let wall = started.elapsed();
    let mut aggregate = WorkerResult::default();
    let mut node_reports = Vec::with_capacity(nodes.len());
    for ((name, _), result) in nodes.iter().zip(results) {
        let r = result?;
        node_reports.push(NodeReport { addr: name.clone(), report: build_report(r.clone(), wall) });
        aggregate.merge(r);
    }
    Ok(ClusterReport { aggregate: build_report(aggregate, wall), nodes: node_reports })
}

/// Closed loop on one connection: keep up to `depth` requests in flight,
/// collecting a completion whenever the window is full.
fn run_closed<'a>(
    addr: SocketAddr,
    ops: impl Iterator<Item = &'a TimedOp>,
    depth: usize,
) -> io::Result<WorkerResult> {
    let mut client = PipelinedClient::connect(addr)?;
    let mut res = WorkerResult::default();
    let mut track = Tracker::default();
    for op in ops {
        while client.in_flight() >= depth {
            let (id, resp) = client.complete()?;
            track.completed(&mut res, id, resp, Instant::now())?;
        }
        match op.op {
            WireOp::Get { .. } => res.gets += 1,
            WireOp::Put { .. } => res.puts += 1,
        }
        let id = submit(&mut client, &op.op)?;
        track.issued(id, Instant::now());
    }
    while client.in_flight() > 0 {
        let (id, resp) = client.complete()?;
        track.completed(&mut res, id, resp, Instant::now())?;
    }
    Ok(res)
}

/// Open loop on one connection: submit each op at its scheduled deadline
/// regardless of what is still in flight, draining completions while
/// waiting for the next deadline. Latency is measured from the
/// *scheduled* send time, so falling behind shows up as tail latency
/// rather than disappearing.
fn run_open(addr: SocketAddr, ops: &[TimedOp], start: Instant) -> io::Result<WorkerResult> {
    let mut client = PipelinedClient::connect(addr)?;
    let mut res = WorkerResult::default();
    let mut track = Tracker::default();
    for op in ops {
        let deadline = start + Duration::from_nanos(op.at.as_nanos());
        // Until the deadline, collect whatever completions arrive.
        loop {
            let now = Instant::now();
            let Some(wait) = deadline.checked_duration_since(now) else { break };
            if wait.is_zero() {
                break;
            }
            match client.complete_timeout(wait)? {
                Some((id, resp)) => track.completed(&mut res, id, resp, Instant::now())?,
                // Nothing in flight: sleep out the rest of the wait.
                None if client.in_flight() == 0 => std::thread::sleep(wait),
                None => {}
            }
        }
        match op.op {
            WireOp::Get { .. } => res.gets += 1,
            WireOp::Put { .. } => res.puts += 1,
        }
        let id = submit(&mut client, &op.op)?;
        track.issued(id, deadline);
    }
    while client.in_flight() > 0 {
        let (id, resp) = client.complete()?;
        track.completed(&mut res, id, resp, Instant::now())?;
    }
    Ok(res)
}

/// Nearest-rank percentile over a sorted sample vector.
fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 * q).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64
}

fn build_report(mut r: WorkerResult, wall: Duration) -> LoadReport {
    let ops = r.gets + r.puts;
    let wall_secs = wall.as_secs_f64();
    r.latencies_us.sort_unstable();
    let mean = if r.latencies_us.is_empty() {
        0.0
    } else {
        r.latencies_us.iter().sum::<u64>() as f64 / r.latencies_us.len() as f64
    };
    LoadReport {
        wall_secs,
        ops,
        gets: r.gets,
        puts: r.puts,
        ops_per_sec: if wall_secs > 0.0 { ops as f64 / wall_secs } else { 0.0 },
        fresh: r.fresh,
        stale_served: r.stale_served,
        refused_stale: r.refused,
        staleness_violations: r.refused,
        misses: r.misses,
        hit_ratio: if r.gets > 0 { (r.fresh + r.stale_served) as f64 / r.gets as f64 } else { 0.0 },
        version_anomalies: r.version_anomalies,
        mean_latency_us: mean,
        p50_latency_us: percentile(&r.latencies_us, 0.50),
        p99_latency_us: percentile(&r.latencies_us, 0.99),
        p999_latency_us: percentile(&r.latencies_us, 0.999),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_and_report_divides() {
        let mut a = WorkerResult {
            gets: 10,
            puts: 5,
            fresh: 6,
            stale_served: 1,
            refused: 2,
            misses: 1,
            latencies_us: vec![10, 20],
            ..Default::default()
        };
        let b = WorkerResult {
            gets: 10,
            puts: 0,
            fresh: 10,
            latencies_us: vec![30, 40],
            ..Default::default()
        };
        a.merge(b);
        let report = build_report(a, Duration::from_secs(2));
        assert_eq!(report.ops, 25);
        assert_eq!(report.gets, 20);
        assert_eq!(report.ops_per_sec, 12.5);
        assert_eq!(report.staleness_violations, 2);
        assert_eq!(report.refused_stale, 2, "per-status twin of the violation count");
        assert!(!report.is_clean());
        assert!((report.hit_ratio - 17.0 / 20.0).abs() < 1e-9);
        assert_eq!(report.mean_latency_us, 25.0);
        assert_eq!(report.p50_latency_us, 20.0);
        assert_eq!(report.p99_latency_us, 40.0);
        assert_eq!(report.p999_latency_us, 40.0);
        // Display stays well-formed and breaks reads down by status.
        let shown = report.to_string();
        assert!(shown.contains("25 ops"));
        assert!(shown.contains("p999"));
        assert!(shown.contains("staleness violations: 2"));
        assert!(
            shown.contains("status: 16 Fresh / 1 ServedStale / 2 RefusedStale / 1 Miss"),
            "status breakdown missing: {shown}"
        );
    }

    #[test]
    fn cluster_report_aggregates_and_displays_per_node() {
        let node = |fresh: u64, refused: u64| WorkerResult {
            gets: fresh + refused,
            fresh,
            refused,
            latencies_us: vec![10, 30],
            ..Default::default()
        };
        let wall = Duration::from_secs(1);
        let mut merged = node(8, 0);
        merged.merge(node(4, 2));
        let report = ClusterReport {
            aggregate: build_report(merged, wall),
            nodes: vec![
                NodeReport { addr: "a:1".into(), report: build_report(node(8, 0), wall) },
                NodeReport { addr: "b:2".into(), report: build_report(node(4, 2), wall) },
            ],
        };
        assert_eq!(report.aggregate.gets, 14);
        assert_eq!(report.aggregate.refused_stale, 2);
        assert!(!report.is_clean(), "aggregate carries the violating node's refusals");
        let shown = report.to_string();
        assert!(shown.contains("per node:"), "{shown}");
        assert!(shown.contains("a:1") && shown.contains("b:2"), "{shown}");
        let json = serde_json::to_string(&report).unwrap();
        for field in ["aggregate", "nodes", "addr", "refused_stale"] {
            assert!(json.contains(field), "cluster JSON missing {field}: {json}");
        }
    }

    #[test]
    fn empty_run_reports_zeros() {
        let report = build_report(WorkerResult::default(), Duration::from_millis(1));
        assert_eq!(report.ops, 0);
        assert_eq!(report.hit_ratio, 0.0);
        assert_eq!(report.mean_latency_us, 0.0);
        assert_eq!(report.p999_latency_us, 0.0);
        assert!(report.is_clean());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile(&sorted, 0.50), 500.0);
        assert_eq!(percentile(&sorted, 0.99), 990.0);
        assert_eq!(percentile(&sorted, 0.999), 999.0);
        assert_eq!(percentile(&sorted, 1.0), 1000.0);
        assert_eq!(percentile(&[42], 0.999), 42.0);
    }

    #[test]
    fn report_serializes_to_json() {
        let report = build_report(
            WorkerResult { gets: 2, puts: 1, fresh: 2, latencies_us: vec![5, 7, 9], ..Default::default() },
            Duration::from_secs(1),
        );
        let json = serde_json::to_string(&report).unwrap();
        for field in ["ops_per_sec", "hit_ratio", "p50_latency_us", "p99_latency_us", "p999_latency_us", "version_anomalies"] {
            assert!(json.contains(field), "JSON missing {field}: {json}");
        }
    }
}
