//! Closed- and open-loop load generation against a running server, with
//! request pipelining and per-request latency percentiles.
//!
//! Both modes replay the same [`TimedOp`] schedule (a `fresca-workload`
//! trace mapped through [`fresca_workload::replay::ReplayConfig`]) over
//! [`PipelinedClient`] connections, so many requests ride each
//! connection concurrently and responses are matched back to requests by
//! [`RequestId`]:
//!
//! * **Closed loop** — `connections` worker threads each keep up to
//!   `pipeline` requests in flight back-to-back: offered load tracks
//!   service capacity, which is how you measure peak throughput.
//! * **Open loop** — one connection sends each operation at its
//!   scheduled deadline *without waiting for earlier responses*: offered
//!   load is fixed by the trace's (rescaled) arrival process. Latency is
//!   measured from the operation's **scheduled** send time to its
//!   completion, so queueing delay under overload is charged to the
//!   server instead of being silently absorbed by a stalled sender (the
//!   coordinated-omission trap the old one-in-flight client fell into).
//!
//! Every worker verifies what it reads: the server's versions are
//! globally monotone, so a served read whose version is older than the
//! last write this worker saw acknowledged for that key is a consistency
//! violation, counted in [`LoadReport::version_anomalies`]. Completions
//! are processed in arrival order, which on an in-order connection means
//! server-processing order, so the check stays exact under pipelining.
//!
//! **Cluster fan-out** ([`run_cluster`]): given several node addresses,
//! the schedule is partitioned by the same consistent-hash ring every
//! other cluster participant uses ([`crate::ring`]) and each node's
//! share is replayed against it concurrently — closed loop with
//! `connections` workers *per node*, open loop with one deadline-paced
//! connection per node. The result is a [`ClusterReport`]: one
//! [`LoadReport`] per node plus the merged aggregate (aggregate
//! percentiles are computed over the pooled samples, not averaged).

use crate::chaos::{self, ChaosReport, ChaosSchedule, ChaosShared, NodeWindow, Supervisor};
use crate::client::{Backoff, CacheClient, PipelinedClient, Response, ServerProbe};
use crate::ring::HashRing;
use fresca_net::{payload, GetStatus, RequestId};
use fresca_workload::{TimedOp, WireOp};
use serde::Serialize;
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Load-generation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `connections` workers issue ops back-to-back (throughput probe).
    Closed {
        /// Number of concurrent connections (worker threads).
        connections: usize,
    },
    /// One connection paced by the schedule's timestamps (rate probe).
    Open,
}

/// How the load generator sizes the value of each put. Whatever the
/// size, the *content* is always the deterministic pattern of
/// [`fresca_net::payload`], so readers can checksum every served value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDist {
    /// Every put carries exactly this many bytes.
    Fixed(u32),
    /// Sizes drawn uniformly from `min..=max`.
    Uniform {
        /// Smallest value size.
        min: u32,
        /// Largest value size.
        max: u32,
    },
    /// Heavy-tailed ("zipf-sized") draw over `1..=max`: log-uniform, so
    /// small values dominate but large ones keep appearing — the shape
    /// of real object-size distributions.
    Zipf {
        /// Largest value size.
        max: u32,
    },
}

impl ValueDist {
    /// Parse a CLI spelling: `fixed:N`, `uniform:MIN:MAX`, `zipf:MAX`.
    /// Sizes above the codec's [`fresca_net::MAX_VALUE`] are rejected
    /// here, with the clear flag error, instead of surfacing later as
    /// an opaque connection drop when the server refuses the frame.
    pub fn parse(s: &str) -> Option<ValueDist> {
        let mut parts = s.split(':');
        let dist = match (parts.next()?, parts.next(), parts.next(), parts.next()) {
            ("fixed", Some(n), None, None) => ValueDist::Fixed(n.parse().ok()?),
            ("uniform", Some(min), Some(max), None) => {
                let (min, max) = (min.parse().ok()?, max.parse().ok()?);
                if min > max {
                    return None;
                }
                ValueDist::Uniform { min, max }
            }
            ("zipf", Some(max), None, None) => {
                let max: u32 = max.parse().ok()?;
                if max == 0 {
                    return None;
                }
                ValueDist::Zipf { max }
            }
            _ => return None,
        };
        (dist.max_size() as usize <= fresca_net::MAX_VALUE).then_some(dist)
    }

    /// Smallest size this distribution can draw.
    pub fn min_size(&self) -> u32 {
        match *self {
            ValueDist::Fixed(n) => n,
            ValueDist::Uniform { min, .. } => min,
            ValueDist::Zipf { .. } => 1,
        }
    }

    /// Largest size this distribution can draw.
    pub fn max_size(&self) -> u32 {
        match *self {
            ValueDist::Fixed(n) => n,
            ValueDist::Uniform { max, .. } => max,
            ValueDist::Zipf { max } => max,
        }
    }

    /// Deterministic size for one operation, from a per-op hash: the
    /// same schedule and dist always produce the same payload sizes.
    pub fn sample(&self, h: u64) -> u32 {
        match *self {
            ValueDist::Fixed(n) => n,
            ValueDist::Uniform { min, max } => min + (h % (max as u64 - min as u64 + 1)) as u32,
            ValueDist::Zipf { max } => {
                // Log-uniform over 1..=max: P(size ≤ s) = ln(s)/ln(max).
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                ((max as f64 + 1.0).powf(u) as u32).clamp(1, max)
            }
        }
    }
}

/// Load generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadGenConfig {
    /// Closed or open loop.
    pub mode: Mode,
    /// Closed loop: maximum requests in flight per connection. `1`
    /// reproduces the old request/response lockstep; the open loop
    /// ignores this (its pipeline depth is set by the schedule).
    pub pipeline: usize,
    /// When set, overrides the schedule's per-op value sizes with draws
    /// from this distribution. Payload *content* is the deterministic
    /// checksummable pattern either way.
    pub value_bytes: Option<ValueDist>,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig { mode: Mode::Closed { connections: 4 }, pipeline: 16, value_bytes: None }
    }
}

/// What a load-generation run observed, end to end.
///
/// Serializes to JSON (see the `loadgen` binary's `--json` flag) so perf
/// trajectories can be tracked across commits.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct LoadReport {
    /// Wall-clock duration of the run in seconds.
    pub wall_secs: f64,
    /// Operations completed (gets + puts).
    pub ops: u64,
    /// Reads issued.
    pub gets: u64,
    /// Writes issued.
    pub puts: u64,
    /// Completed operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Reads served fresh.
    pub fresh: u64,
    /// Reads served stale-within-bound.
    pub stale_served: u64,
    /// Reads refused as `RefusedStale`: the entry existed but could not
    /// satisfy the staleness bound (or was invalidated). The per-status
    /// sibling of [`LoadReport::staleness_violations`] — same count,
    /// kept under both names so the status breakdown
    /// (fresh/stale_served/refused_stale/misses) reads uniformly.
    pub refused_stale: u64,
    /// Reads refused: the entry existed but could not satisfy the
    /// staleness bound. These are the run's *staleness violations* — the
    /// quantity the paper's freshness machinery exists to minimise.
    pub staleness_violations: u64,
    /// Reads that found no entry.
    pub misses: u64,
    /// Served reads ÷ issued reads.
    pub hit_ratio: f64,
    /// Served reads whose version regressed below a write this worker
    /// had seen acknowledged — should be zero.
    pub version_anomalies: u64,
    /// Served reads whose value bytes failed the FNV checksum against
    /// the deterministic pattern for their key and length — should be
    /// zero. Catches the payload-corruption and framing-bug class that
    /// wire-size accounting cannot.
    pub checksum_mismatches: u64,
    /// Payload bytes verified across all served reads.
    pub value_bytes_read: u64,
    /// Payload bytes written across all puts.
    pub value_bytes_written: u64,
    /// Successful reconnects to nodes whose connection died mid-run.
    /// Zero outside chaos runs — a load generator connection dying
    /// under stable membership is an error, not a retry.
    pub reconnects: u64,
    /// Mean request latency in microseconds.
    pub mean_latency_us: f64,
    /// Median request latency in microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile request latency in microseconds.
    pub p99_latency_us: f64,
    /// 99.9th-percentile request latency in microseconds.
    pub p999_latency_us: f64,
    /// Identity of the schedule this run replayed: a scenario registry
    /// name (`loadgen --scenario`) or a workload generator name. Paired
    /// with [`LoadReport::seed`], it makes every report reproducible —
    /// `baseline check` refuses to compare reports across scenarios.
    pub scenario: String,
    /// RNG master seed the schedule was generated from.
    pub seed: u64,
    /// Origin refetches the server(s) issued during this run (probed
    /// via `StatsReq` before and after, so concurrent runs against the
    /// same server overlap in each other's counts). Zero without an
    /// origin.
    pub refetches: u64,
    /// Reads that coalesced onto an in-flight refetch during this run.
    pub refetch_coalesced: u64,
    /// Reads degraded to their fallback because the origin was
    /// unreachable during this run.
    pub origin_errors: u64,
    /// Requests the server(s) forwarded to the event loop owning their
    /// key's shard during this run (probed like the refetch counters).
    /// Zero on a single-event-loop server.
    pub cross_core_forwards: u64,
    /// Live entries across the server's event-loop-owned slab shards at
    /// the end of the run (a gauge, not a delta; summed across nodes in
    /// cluster runs).
    pub slab_entries: u64,
    /// Allocated slab slots across the server's owned shards at the end
    /// of the run (gauge; the slab memory high-water mark).
    pub slab_capacity: u64,
}

impl LoadReport {
    /// True when the run saw no staleness violations, no version
    /// anomalies, and no payload checksum mismatches — the pass
    /// condition for smoke tests and CI.
    pub fn is_clean(&self) -> bool {
        self.staleness_violations == 0
            && self.version_anomalies == 0
            && self.checksum_mismatches == 0
    }

    /// Record which schedule produced this run (scenario or generator
    /// name, plus the RNG master seed) so the report is reproducible.
    pub fn set_identity(&mut self, scenario: &str, seed: u64) {
        self.scenario = scenario.to_string();
        self.seed = seed;
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.scenario.is_empty() {
            writeln!(f, "schedule: {} (seed {})", self.scenario, self.seed)?;
        }
        writeln!(
            f,
            "{} ops in {:.3}s  ({:.0} ops/s)",
            self.ops, self.wall_secs, self.ops_per_sec
        )?;
        writeln!(
            f,
            "latency: mean {:.1}us  p50 {:.1}us  p99 {:.1}us  p999 {:.1}us",
            self.mean_latency_us, self.p50_latency_us, self.p99_latency_us, self.p999_latency_us
        )?;
        writeln!(f, "reads: {} (hit ratio {:.2}%)", self.gets, 100.0 * self.hit_ratio)?;
        writeln!(
            f,
            "  status: {} Fresh / {} ServedStale / {} RefusedStale / {} Miss",
            self.fresh, self.stale_served, self.refused_stale, self.misses
        )?;
        writeln!(f, "writes: {}", self.puts)?;
        writeln!(
            f,
            "payload bytes: {} written, {} read back ({} checksum mismatches)",
            self.value_bytes_written, self.value_bytes_read, self.checksum_mismatches
        )?;
        writeln!(
            f,
            "staleness violations: {}   version anomalies: {}",
            self.staleness_violations, self.version_anomalies
        )?;
        if self.refetches + self.refetch_coalesced + self.origin_errors > 0 {
            writeln!(
                f,
                "origin refetches: {} ({} coalesced, {} origin errors)",
                self.refetches, self.refetch_coalesced, self.origin_errors
            )?;
        }
        if self.cross_core_forwards > 0 || self.slab_capacity > 0 {
            writeln!(
                f,
                "cross-core forwards: {}   slab: {}/{} entries/slots",
                self.cross_core_forwards, self.slab_entries, self.slab_capacity
            )?;
        }
        if self.reconnects > 0 {
            writeln!(f, "reconnects: {}", self.reconnects)?;
        }
        Ok(())
    }
}

/// Per-worker accumulator, merged into the final [`LoadReport`].
#[derive(Debug, Clone, Default)]
struct WorkerResult {
    gets: u64,
    puts: u64,
    fresh: u64,
    stale_served: u64,
    refused: u64,
    misses: u64,
    version_anomalies: u64,
    checksum_mismatches: u64,
    value_bytes_read: u64,
    value_bytes_written: u64,
    reconnects: u64,
    latencies_us: Vec<u64>,
}

impl WorkerResult {
    fn merge(&mut self, other: WorkerResult) {
        self.gets += other.gets;
        self.puts += other.puts;
        self.fresh += other.fresh;
        self.stale_served += other.stale_served;
        self.refused += other.refused;
        self.misses += other.misses;
        self.version_anomalies += other.version_anomalies;
        self.checksum_mismatches += other.checksum_mismatches;
        self.value_bytes_read += other.value_bytes_read;
        self.value_bytes_written += other.value_bytes_written;
        self.reconnects += other.reconnects;
        self.latencies_us.extend(other.latencies_us);
    }
}

/// One worker's bookkeeping for requests in flight: when each id was
/// (scheduled to be) sent, and the last acknowledged version per key.
#[derive(Debug, Default)]
struct Tracker {
    issued_at: HashMap<RequestId, Instant>,
    acked: HashMap<u64, u64>,
    /// True when every put this run issues carries a non-empty value —
    /// then a *served* empty value is itself a checksum mismatch
    /// (an empty slice trivially matches its own empty pattern, so
    /// without this a payload-dropping bug would read as clean).
    expect_nonempty: bool,
}

impl Tracker {
    fn new(dist: Option<ValueDist>) -> Self {
        Tracker {
            expect_nonempty: dist.is_some_and(|d| d.min_size() > 0),
            ..Tracker::default()
        }
    }

    fn issued(&mut self, id: RequestId, at: Instant) {
        self.issued_at.insert(id, at);
    }

    /// Fold one completion into the worker's counters.
    fn completed(
        &mut self,
        res: &mut WorkerResult,
        id: RequestId,
        resp: Response,
        now: Instant,
    ) -> io::Result<()> {
        let issued = self.issued_at.remove(&id).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response for unknown request {id}"),
            )
        })?;
        res.latencies_us.push(now.saturating_duration_since(issued).as_micros() as u64);
        match resp {
            Response::Get { key, outcome } => {
                match outcome.status {
                    GetStatus::Fresh => res.fresh += 1,
                    GetStatus::ServedStale => res.stale_served += 1,
                    GetStatus::RefusedStale => res.refused += 1,
                    GetStatus::Miss => res.misses += 1,
                }
                if outcome.is_served() {
                    // Every served value is checksummed against the
                    // deterministic pattern for its key and length — a
                    // framing bug that shifts, truncates, or corrupts
                    // payload bytes fails here even when sizes add up.
                    // A served *empty* value is also a mismatch when no
                    // writer in this run produces empty values.
                    res.value_bytes_read += outcome.value.len() as u64;
                    let dropped = self.expect_nonempty && outcome.value.is_empty();
                    if dropped || !payload::verify(key, &outcome.value) {
                        res.checksum_mismatches += 1;
                    }
                    if let Some(&expected) = self.acked.get(&key) {
                        if outcome.version < expected {
                            res.version_anomalies += 1;
                        }
                    }
                }
            }
            Response::Put { key, version } => {
                self.acked.insert(key, version);
            }
        }
        Ok(())
    }
}

/// Deterministic per-op randomness for value-size draws: the shared
/// SplitMix64 finalizer over the op's key and schedule position.
fn op_hash(key: u64, index: u64) -> u64 {
    payload::mix(key ^ index.rotate_left(32))
}

fn submit(
    client: &mut PipelinedClient,
    op: &WireOp,
    dist: Option<ValueDist>,
    index: u64,
    res: &mut WorkerResult,
) -> io::Result<RequestId> {
    match *op {
        WireOp::Get { key, max_staleness } => client.submit_get(key, max_staleness),
        WireOp::Put { key, value_size, ttl } => {
            let len = dist.map_or(value_size, |d| d.sample(op_hash(key, index)));
            res.value_bytes_written += len as u64;
            client.submit_put(key, payload::pattern(key, len as usize), ttl)
        }
    }
}

/// Snapshot a server's wire-exported counters over a side connection.
/// Best-effort — a server predating `StatsReq`, or a probe hitting a
/// connection limit, reads as zeros rather than failing the run it
/// brackets.
fn probe_refetch_stats(addr: SocketAddr) -> ServerProbe {
    crate::client::CacheClient::connect(addr)
        .and_then(|mut c| c.server_stats())
        .unwrap_or_default()
}

/// Attribute two bracketing probes to a report: cumulative counters
/// (refetches, forwards) as deltas, slab gauges at their end-of-run
/// value.
fn attribute_refetches(report: &mut LoadReport, before: ServerProbe, after: ServerProbe) {
    report.refetches = after.refetches.saturating_sub(before.refetches);
    report.refetch_coalesced = after.refetch_coalesced.saturating_sub(before.refetch_coalesced);
    report.origin_errors = after.origin_errors.saturating_sub(before.origin_errors);
    report.cross_core_forwards =
        after.cross_core_forwards.saturating_sub(before.cross_core_forwards);
    report.slab_entries = after.slab_entries;
    report.slab_capacity = after.slab_capacity;
}

/// Replay `ops` against the server at `addr` and report what happened.
pub fn run(addr: SocketAddr, ops: &[TimedOp], config: &LoadGenConfig) -> io::Result<LoadReport> {
    let before = probe_refetch_stats(addr);
    let started = Instant::now();
    let merged = run_node(addr, ops, config, started)?;
    let wall = started.elapsed();
    let mut report = build_report(merged, wall);
    attribute_refetches(&mut report, before, probe_refetch_stats(addr));
    Ok(report)
}

/// Replay `ops` against one node in the configured mode — the shared
/// engine under both the single-node [`run`] and the per-node workers
/// of [`run_cluster`].
fn run_node(
    addr: SocketAddr,
    ops: &[TimedOp],
    config: &LoadGenConfig,
    started: Instant,
) -> io::Result<WorkerResult> {
    match config.mode {
        Mode::Closed { connections } => {
            assert!(connections >= 1, "need at least one connection");
            let depth = config.pipeline.max(1);
            let results: Vec<io::Result<WorkerResult>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..connections)
                    .map(|w| {
                        s.spawn(move || {
                            // Strided partition: worker w takes ops w,
                            // w+N, w+2N, … so key locality and the
                            // read/write interleaving stay roughly
                            // uniform across workers.
                            run_closed(
                                addr,
                                ops.iter().enumerate().skip(w).step_by(connections),
                                depth,
                                config.value_bytes,
                            )
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("loadgen worker panicked")).collect()
            });
            let mut merged = WorkerResult::default();
            for r in results {
                merged.merge(r?);
            }
            Ok(merged)
        }
        Mode::Open => run_open(addr, ops, started, config.value_bytes),
    }
}

/// One node's slice of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NodeReport {
    /// The node's address as given on the command line — also its ring
    /// name, so this is the spelling placement was computed from.
    pub addr: String,
    /// What this node's share of the schedule observed.
    pub report: LoadReport,
}

/// What a cluster fan-out run observed: per-node reports plus the
/// merged aggregate. Serializes to JSON for the `loadgen --json` flag.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterReport {
    /// Everything merged: counters summed, percentiles over the pooled
    /// latency samples of all nodes.
    pub aggregate: LoadReport,
    /// Per-node breakdown, in member-list order.
    pub nodes: Vec<NodeReport>,
    /// Chaos-run extension: what the kill/restart schedule did and the
    /// per-node availability windows it opened. `None` (and absent from
    /// the JSON) outside [`run_cluster_chaos`], so stable-membership
    /// reports keep their exact old shape.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub chaos: Option<ChaosReport>,
}

impl ClusterReport {
    /// True when no node saw staleness violations or version anomalies.
    pub fn is_clean(&self) -> bool {
        self.aggregate.is_clean()
    }

    /// Record the schedule identity (scenario or generator name + seed)
    /// on the aggregate and every per-node report, so each row of the
    /// JSON stays independently reproducible.
    pub fn set_identity(&mut self, scenario: &str, seed: u64) {
        self.aggregate.set_identity(scenario, seed);
        for node in &mut self.nodes {
            node.report.set_identity(scenario, seed);
        }
    }
}

impl std::fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.aggregate)?;
        writeln!(f, "per node:")?;
        for n in &self.nodes {
            writeln!(
                f,
                "  {}: {} ops ({:.0}/s)  status {}/{}/{}/{} F/SS/RS/M  p99 {:.1}us  anomalies {}",
                n.addr,
                n.report.ops,
                n.report.ops_per_sec,
                n.report.fresh,
                n.report.stale_served,
                n.report.refused_stale,
                n.report.misses,
                n.report.p99_latency_us,
                n.report.version_anomalies
            )?;
        }
        if let Some(chaos) = &self.chaos {
            writeln!(
                f,
                "chaos: {} ({} kills, {} restarts, {} reconnects, {} ops lost, final epoch {})",
                chaos.schedule,
                chaos.kills,
                chaos.restarts,
                chaos.reconnects,
                chaos.error_ops,
                chaos.final_epoch
            )?;
            for w in &chaos.windows {
                if w.killed_at_secs < 0.0 {
                    continue;
                }
                match w.window_secs() {
                    Some(secs) => writeln!(
                        f,
                        "  {}: down {:.2}s (killed {:.2}s, back {:.2}s)  {} ops lost  handoff in/out {}/{}",
                        w.node,
                        secs,
                        w.killed_at_secs,
                        w.recovered_at_secs,
                        w.error_ops,
                        w.handoff_in,
                        w.handoff_out
                    )?,
                    None => writeln!(
                        f,
                        "  {}: killed {:.2}s, NEVER RECOVERED  {} ops lost",
                        w.node, w.killed_at_secs, w.error_ops
                    )?,
                }
            }
        }
        Ok(())
    }
}

/// Fan a schedule out across a consistent-hash cluster: each op goes to
/// the node owning its key (the same ring placement every other cluster
/// participant computes), all nodes are driven concurrently, and the
/// result carries both per-node and merged aggregate reports.
///
/// `nodes` pairs each member's ring name (the address string as typed —
/// all participants must spell it identically) with its resolved socket
/// address; `vnodes` must match the cluster's ring configuration. In
/// closed-loop mode each node gets its own `connections` workers; in
/// open-loop mode each node gets one connection paced by the shared
/// schedule clock, so cross-node ordering follows the trace.
pub fn run_cluster(
    nodes: &[(String, SocketAddr)],
    ops: &[TimedOp],
    config: &LoadGenConfig,
    vnodes: usize,
) -> io::Result<ClusterReport> {
    let names: Vec<&str> = nodes.iter().map(|(name, _)| name.as_str()).collect();
    let ring = HashRing::try_from_members(vnodes, &names)?;
    // Partition the schedule by ring owner, preserving each node's
    // schedule order (open-loop pacing depends on it).
    let mut per_node: Vec<Vec<TimedOp>> = vec![Vec::new(); nodes.len()];
    for op in ops {
        let owner = ring.node_index_for(op.op.key()).expect("non-empty ring");
        per_node[owner].push(*op);
    }
    let before: Vec<ServerProbe> =
        nodes.iter().map(|&(_, addr)| probe_refetch_stats(addr)).collect();
    let started = Instant::now();
    let results: Vec<io::Result<WorkerResult>> = std::thread::scope(|s| {
        let handles: Vec<_> = nodes
            .iter()
            .zip(&per_node)
            .map(|(&(_, addr), node_ops)| {
                s.spawn(move || run_node(addr, node_ops, config, started))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("cluster node worker panicked")).collect()
    });
    let wall = started.elapsed();
    let mut aggregate = WorkerResult::default();
    let mut node_reports = Vec::with_capacity(nodes.len());
    let mut totals = ServerProbe::default();
    for (i, ((name, addr), result)) in nodes.iter().zip(results).enumerate() {
        let r = result?;
        let mut report = build_report(r.clone(), wall);
        attribute_refetches(&mut report, before[i], probe_refetch_stats(*addr));
        totals.refetches += report.refetches;
        totals.refetch_coalesced += report.refetch_coalesced;
        totals.origin_errors += report.origin_errors;
        totals.cross_core_forwards += report.cross_core_forwards;
        totals.slab_entries += report.slab_entries;
        totals.slab_capacity += report.slab_capacity;
        node_reports.push(NodeReport { addr: name.clone(), report });
        aggregate.merge(r);
    }
    let mut aggregate = build_report(aggregate, wall);
    attribute_refetches(&mut aggregate, ServerProbe::default(), totals);
    Ok(ClusterReport { aggregate, nodes: node_reports, chaos: None })
}

/// Replay a schedule against a live-membership cluster while a
/// [`ChaosSchedule`] kills and restarts nodes under it, measuring what
/// churn costs: per-node availability windows, operations lost,
/// reconnects, and — via the usual trackers — any staleness violation,
/// version anomaly, or checksum mismatch the churn induced.
///
/// The run is **deadline-paced** regardless of `config.mode` (the
/// chaos events fire at wall-clock offsets, so the load must span wall
/// time; a closed loop could finish before the first kill). One driver
/// thread owns a pipelined connection per node and routes every op by
/// the *current* membership view: the chaos controller (a second
/// thread) SIGKILLs the victim, tells a survivor it left, and the
/// epoch bump re-routes the victim's keys — so ops lost to a death are
/// bounded by the leave-adoption latency, not the node's downtime.
///
/// Version floors are tracked per node and reset when a node's restart
/// *incarnation* changes: a respawned node allocates versions from a
/// fresh counter, so floors from its previous life would be false
/// anomalies. Cross-incarnation staleness still cannot hide — values
/// are checksummed against their key's deterministic pattern, and
/// handoff only ever moves servably-fresh entries.
///
/// On return the cluster's membership has been seeded (every node
/// joined through node 0) and the [`ChaosReport`] is attached to the
/// [`ClusterReport::chaos`] field.
pub fn run_cluster_chaos(
    nodes: &[(String, SocketAddr)],
    ops: &[TimedOp],
    config: &LoadGenConfig,
    vnodes: usize,
    schedule: &ChaosSchedule,
    supervisor: &mut dyn Supervisor,
    seed: u64,
) -> io::Result<ClusterReport> {
    if nodes.len() < 2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "chaos runs need at least two nodes (a survivor processes leaves and joins)",
        ));
    }
    // Seed the cluster's own membership to the full node list: join
    // every member through node 0; the announcements fan the final
    // epoch out to everyone.
    let mut admin = CacheClient::connect(nodes[0].1)?;
    let mut view = (0u64, Vec::new());
    for (name, _) in nodes {
        view = admin.join(name)?;
    }
    let shared = ChaosShared::new(nodes.len(), view.0, view.1);
    let before: Vec<ServerProbe> =
        nodes.iter().map(|&(_, addr)| probe_refetch_stats(addr)).collect();
    let started = Instant::now();
    let (stamps, driven) = std::thread::scope(|s| {
        let controller =
            s.spawn(|| chaos::run_schedule(schedule, supervisor, nodes, started, &shared));
        let driven = chaos_drive(nodes, ops, config, vnodes, &shared, started, seed);
        (controller.join().expect("chaos controller panicked"), driven)
    });
    let driven = driven?;
    let wall = started.elapsed();
    // Post-run probes: killed nodes have restarted by now (the
    // controller waited for them), so these see the post-handoff state.
    let after: Vec<ServerProbe> =
        nodes.iter().map(|&(_, addr)| probe_refetch_stats(addr)).collect();
    let mut windows = Vec::with_capacity(nodes.len());
    let mut aggregate = WorkerResult::default();
    let mut node_reports = Vec::with_capacity(nodes.len());
    let mut totals = ServerProbe::default();
    for (i, (name, _)) in nodes.iter().enumerate() {
        let r = &driven.results[i];
        // A reconnect that happened before the kill cannot close the
        // kill's window.
        let recovered = driven.recovered_at[i];
        let recovered =
            if stamps[i].0 >= 0.0 && recovered < stamps[i].0 { -1.0 } else { recovered };
        windows.push(NodeWindow {
            node: name.clone(),
            killed_at_secs: stamps[i].0,
            restarted_at_secs: stamps[i].1,
            recovered_at_secs: recovered,
            error_ops: driven.error_ops[i],
            refusals: r.refused,
            handoff_in: after[i].handoff_in,
            handoff_out: after[i].handoff_out,
            epoch: after[i].epoch,
        });
        let mut report = build_report(r.clone(), wall);
        attribute_refetches(&mut report, before[i], after[i]);
        totals.refetches += report.refetches;
        totals.refetch_coalesced += report.refetch_coalesced;
        totals.origin_errors += report.origin_errors;
        totals.cross_core_forwards += report.cross_core_forwards;
        totals.slab_entries += report.slab_entries;
        totals.slab_capacity += report.slab_capacity;
        node_reports.push(NodeReport { addr: name.clone(), report });
        aggregate.merge(r.clone());
    }
    let chaos_report = ChaosReport {
        schedule: schedule.name.clone(),
        kills: stamps.iter().filter(|s| s.0 >= 0.0).count() as u64,
        restarts: stamps.iter().filter(|s| s.1 >= 0.0).count() as u64,
        reconnects: aggregate.reconnects,
        error_ops: driven.error_ops.iter().sum(),
        final_epoch: shared.epoch.load(Ordering::Acquire),
        windows,
    };
    let mut aggregate = build_report(aggregate, wall);
    attribute_refetches(&mut aggregate, ServerProbe::default(), totals);
    Ok(ClusterReport { aggregate, nodes: node_reports, chaos: Some(chaos_report) })
}

/// What the chaos driver thread measured, per node.
struct ChaosDriven {
    results: Vec<WorkerResult>,
    error_ops: Vec<u64>,
    /// Seconds from run start of the last successful reconnect (−1 =
    /// never reconnected).
    recovered_at: Vec<f64>,
}

/// The chaos load driver: one thread, one pipelined connection per
/// node, every op routed by the current membership view at its
/// scheduled deadline. Connection failures are contained to the node
/// that died — its in-flight ops are counted lost, its version floors
/// kept (unless it restarted), and reconnects are paced by a seeded
/// [`Backoff`] so runs stay reproducible.
fn chaos_drive(
    nodes: &[(String, SocketAddr)],
    ops: &[TimedOp],
    config: &LoadGenConfig,
    vnodes: usize,
    shared: &ChaosShared,
    started: Instant,
    seed: u64,
) -> io::Result<ChaosDriven> {
    let n = nodes.len();
    let dist = config.value_bytes;
    let index_of: HashMap<&str, usize> =
        nodes.iter().enumerate().map(|(i, (name, _))| (name.as_str(), i)).collect();
    let mut clients: Vec<Option<PipelinedClient>> = Vec::with_capacity(n);
    for &(_, addr) in nodes {
        clients.push(Some(PipelinedClient::connect(addr)?));
    }
    let mut trackers: Vec<Tracker> = (0..n).map(|_| Tracker::new(dist)).collect();
    let mut results: Vec<WorkerResult> = vec![WorkerResult::default(); n];
    let mut error_ops = vec![0u64; n];
    let mut recovered_at = vec![-1.0f64; n];
    let mut inc_seen = vec![0u32; n];
    let mut policies: Vec<Backoff> = (0..n)
        .map(|i| {
            Backoff::new(
                Duration::from_millis(25),
                Duration::from_millis(500),
                u32::MAX,
                seed ^ payload::mix(i as u64),
            )
        })
        .collect();
    let mut attempts = vec![0u32; n];
    let mut retry_at: Vec<Instant> = vec![started; n];
    // Routing view: starts at whatever the seeding joins produced.
    let mut seen_epoch = shared.epoch.load(Ordering::Acquire);
    let mut ring = HashRing::try_from_members(vnodes, &shared.view_snapshot())?;

    // The connection to `i` failed: its in-flight ops are lost (counted
    // to the node's window), its pending map cleared. Version floors
    // survive — the *node* may still be alive (and its versions
    // monotone); floors only reset when the restart incarnation moves.
    fn fail_node(
        i: usize,
        clients: &mut [Option<PipelinedClient>],
        trackers: &mut [Tracker],
        error_ops: &mut [u64],
        attempts: &mut [u32],
        retry_at: &mut [Instant],
    ) {
        error_ops[i] += trackers[i].issued_at.len() as u64;
        trackers[i].issued_at.clear();
        clients[i] = None;
        attempts[i] = 0;
        retry_at[i] = Instant::now();
    }

    for (index, op) in ops.iter().enumerate() {
        let deadline = started + Duration::from_nanos(op.at.as_nanos());
        // Until the deadline, collect completions from every live node.
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let mut progressed = false;
            for i in 0..n {
                let Some(client) = clients[i].as_mut() else { continue };
                if client.in_flight() == 0 {
                    continue;
                }
                match client.try_complete() {
                    Ok(Some((id, resp))) => {
                        trackers[i].completed(&mut results[i], id, resp, Instant::now())?;
                        progressed = true;
                    }
                    Ok(None) => {}
                    Err(_) => fail_node(
                        i,
                        &mut clients,
                        &mut trackers,
                        &mut error_ops,
                        &mut attempts,
                        &mut retry_at,
                    ),
                }
            }
            if !progressed {
                let wait = deadline
                    .saturating_duration_since(Instant::now())
                    .min(Duration::from_millis(1));
                if wait.is_zero() {
                    break;
                }
                std::thread::sleep(wait);
            }
        }
        // Adopt a newer membership view if the controller moved the
        // epoch (leave after a kill, join after a restart).
        let epoch = shared.epoch.load(Ordering::Acquire);
        if epoch != seen_epoch {
            seen_epoch = epoch;
            let members = shared.view_snapshot();
            if let Ok(fresh) = HashRing::try_from_members(vnodes, &members) {
                ring = fresh;
            }
        }
        let key = op.op.key();
        let Some(i) = ring.node_for(key).and_then(|name| index_of.get(name).copied()) else {
            continue;
        };
        // Make sure we hold a connection to the owner, reconnecting
        // (backoff-paced) if ours died and the node is believed up.
        if clients[i].is_none()
            && !shared.down[i].load(Ordering::Acquire)
            && Instant::now() >= retry_at[i]
        {
            match PipelinedClient::connect(nodes[i].1) {
                Ok(fresh) => {
                    clients[i] = Some(fresh);
                    results[i].reconnects += 1;
                    recovered_at[i] = started.elapsed().as_secs_f64();
                    let inc = shared.incarnations[i].load(Ordering::Acquire);
                    if inc != inc_seen[i] {
                        // The node restarted: its version counter (and
                        // cache) began again, so old floors are void.
                        inc_seen[i] = inc;
                        trackers[i] = Tracker::new(dist);
                    }
                }
                Err(_) => {
                    attempts[i] += 1;
                    let delay = policies[i].delay(attempts[i]);
                    retry_at[i] = Instant::now() + delay;
                }
            }
        }
        let Some(client) = clients[i].as_mut() else {
            // The owner is down (or unreachable): the op is lost and
            // attributed to the node's availability window.
            error_ops[i] += 1;
            continue;
        };
        match submit(client, &op.op, dist, index as u64, &mut results[i]) {
            Ok(id) => {
                match op.op {
                    WireOp::Get { .. } => results[i].gets += 1,
                    WireOp::Put { .. } => results[i].puts += 1,
                }
                trackers[i].issued(id, deadline);
            }
            Err(_) => {
                error_ops[i] += 1;
                fail_node(
                    i,
                    &mut clients,
                    &mut trackers,
                    &mut error_ops,
                    &mut attempts,
                    &mut retry_at,
                );
            }
        }
    }
    // Drain what is still in flight; a connection dying here loses its
    // tail like any other death.
    for i in 0..n {
        while let Some(client) = clients[i].as_mut() {
            if client.in_flight() == 0 {
                break;
            }
            match client.complete_timeout(Duration::from_secs(1)) {
                Ok(Some((id, resp))) => {
                    trackers[i].completed(&mut results[i], id, resp, Instant::now())?;
                }
                Ok(None) | Err(_) => {
                    fail_node(
                        i,
                        &mut clients,
                        &mut trackers,
                        &mut error_ops,
                        &mut attempts,
                        &mut retry_at,
                    );
                    break;
                }
            }
        }
    }
    Ok(ChaosDriven { results, error_ops, recovered_at })
}

/// Closed loop on one connection: keep up to `depth` requests in flight,
/// collecting a completion whenever the window is full.
fn run_closed<'a>(
    addr: SocketAddr,
    ops: impl Iterator<Item = (usize, &'a TimedOp)>,
    depth: usize,
    dist: Option<ValueDist>,
) -> io::Result<WorkerResult> {
    let mut client = PipelinedClient::connect(addr)?;
    let mut res = WorkerResult::default();
    let mut track = Tracker::new(dist);
    for (index, op) in ops {
        while client.in_flight() >= depth {
            let (id, resp) = client.complete()?;
            track.completed(&mut res, id, resp, Instant::now())?;
        }
        match op.op {
            WireOp::Get { .. } => res.gets += 1,
            WireOp::Put { .. } => res.puts += 1,
        }
        let id = submit(&mut client, &op.op, dist, index as u64, &mut res)?;
        track.issued(id, Instant::now());
    }
    while client.in_flight() > 0 {
        let (id, resp) = client.complete()?;
        track.completed(&mut res, id, resp, Instant::now())?;
    }
    Ok(res)
}

/// Open loop on one connection: submit each op at its scheduled deadline
/// regardless of what is still in flight, draining completions while
/// waiting for the next deadline. Latency is measured from the
/// *scheduled* send time, so falling behind shows up as tail latency
/// rather than disappearing.
fn run_open(
    addr: SocketAddr,
    ops: &[TimedOp],
    start: Instant,
    dist: Option<ValueDist>,
) -> io::Result<WorkerResult> {
    let mut client = PipelinedClient::connect(addr)?;
    let mut res = WorkerResult::default();
    let mut track = Tracker::new(dist);
    for (index, op) in ops.iter().enumerate() {
        let deadline = start + Duration::from_nanos(op.at.as_nanos());
        // Until the deadline, collect whatever completions arrive.
        loop {
            let now = Instant::now();
            let Some(wait) = deadline.checked_duration_since(now) else { break };
            if wait.is_zero() {
                break;
            }
            match client.complete_timeout(wait)? {
                Some((id, resp)) => track.completed(&mut res, id, resp, Instant::now())?,
                // Nothing in flight: sleep out the rest of the wait.
                None if client.in_flight() == 0 => std::thread::sleep(wait),
                None => {}
            }
        }
        match op.op {
            WireOp::Get { .. } => res.gets += 1,
            WireOp::Put { .. } => res.puts += 1,
        }
        let id = submit(&mut client, &op.op, dist, index as u64, &mut res)?;
        track.issued(id, deadline);
    }
    while client.in_flight() > 0 {
        let (id, resp) = client.complete()?;
        track.completed(&mut res, id, resp, Instant::now())?;
    }
    Ok(res)
}

/// Nearest-rank percentile over a sorted sample vector.
fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 * q).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64
}

fn build_report(mut r: WorkerResult, wall: Duration) -> LoadReport {
    let ops = r.gets + r.puts;
    let wall_secs = wall.as_secs_f64();
    r.latencies_us.sort_unstable();
    let mean = if r.latencies_us.is_empty() {
        0.0
    } else {
        r.latencies_us.iter().sum::<u64>() as f64 / r.latencies_us.len() as f64
    };
    LoadReport {
        wall_secs,
        ops,
        gets: r.gets,
        puts: r.puts,
        ops_per_sec: if wall_secs > 0.0 { ops as f64 / wall_secs } else { 0.0 },
        fresh: r.fresh,
        stale_served: r.stale_served,
        refused_stale: r.refused,
        staleness_violations: r.refused,
        misses: r.misses,
        hit_ratio: if r.gets > 0 { (r.fresh + r.stale_served) as f64 / r.gets as f64 } else { 0.0 },
        version_anomalies: r.version_anomalies,
        checksum_mismatches: r.checksum_mismatches,
        value_bytes_read: r.value_bytes_read,
        value_bytes_written: r.value_bytes_written,
        reconnects: r.reconnects,
        mean_latency_us: mean,
        p50_latency_us: percentile(&r.latencies_us, 0.50),
        p99_latency_us: percentile(&r.latencies_us, 0.99),
        p999_latency_us: percentile(&r.latencies_us, 0.999),
        // Schedule identity is attached by the caller via
        // `set_identity` — the engine only sees the op list.
        scenario: String::new(),
        seed: 0,
        // Refetch counters come from server-side probes, attributed by
        // the caller via `attribute_refetches`.
        refetches: 0,
        refetch_coalesced: 0,
        origin_errors: 0,
        cross_core_forwards: 0,
        slab_entries: 0,
        slab_capacity: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_and_report_divides() {
        let mut a = WorkerResult {
            gets: 10,
            puts: 5,
            fresh: 6,
            stale_served: 1,
            refused: 2,
            misses: 1,
            latencies_us: vec![10, 20],
            ..Default::default()
        };
        let b = WorkerResult {
            gets: 10,
            puts: 0,
            fresh: 10,
            latencies_us: vec![30, 40],
            ..Default::default()
        };
        a.merge(b);
        let report = build_report(a, Duration::from_secs(2));
        assert_eq!(report.ops, 25);
        assert_eq!(report.gets, 20);
        assert_eq!(report.ops_per_sec, 12.5);
        assert_eq!(report.staleness_violations, 2);
        assert_eq!(report.refused_stale, 2, "per-status twin of the violation count");
        assert!(!report.is_clean());
        assert!((report.hit_ratio - 17.0 / 20.0).abs() < 1e-9);
        assert_eq!(report.mean_latency_us, 25.0);
        assert_eq!(report.p50_latency_us, 20.0);
        assert_eq!(report.p99_latency_us, 40.0);
        assert_eq!(report.p999_latency_us, 40.0);
        // Display stays well-formed and breaks reads down by status.
        let shown = report.to_string();
        assert!(shown.contains("25 ops"));
        assert!(shown.contains("p999"));
        assert!(shown.contains("staleness violations: 2"));
        assert!(
            shown.contains("status: 16 Fresh / 1 ServedStale / 2 RefusedStale / 1 Miss"),
            "status breakdown missing: {shown}"
        );
    }

    #[test]
    fn cluster_report_aggregates_and_displays_per_node() {
        let node = |fresh: u64, refused: u64| WorkerResult {
            gets: fresh + refused,
            fresh,
            refused,
            latencies_us: vec![10, 30],
            ..Default::default()
        };
        let wall = Duration::from_secs(1);
        let mut merged = node(8, 0);
        merged.merge(node(4, 2));
        let report = ClusterReport {
            aggregate: build_report(merged, wall),
            nodes: vec![
                NodeReport { addr: "a:1".into(), report: build_report(node(8, 0), wall) },
                NodeReport { addr: "b:2".into(), report: build_report(node(4, 2), wall) },
            ],
            chaos: None,
        };
        assert_eq!(report.aggregate.gets, 14);
        assert_eq!(report.aggregate.refused_stale, 2);
        assert!(!report.is_clean(), "aggregate carries the violating node's refusals");
        let shown = report.to_string();
        assert!(shown.contains("per node:"), "{shown}");
        assert!(shown.contains("a:1") && shown.contains("b:2"), "{shown}");
        let json = serde_json::to_string(&report).unwrap();
        for field in ["aggregate", "nodes", "addr", "refused_stale"] {
            assert!(json.contains(field), "cluster JSON missing {field}: {json}");
        }
    }

    #[test]
    fn value_dist_parses_samples_and_bounds() {
        assert_eq!(ValueDist::parse("fixed:128"), Some(ValueDist::Fixed(128)));
        assert_eq!(
            ValueDist::parse("uniform:16:4096"),
            Some(ValueDist::Uniform { min: 16, max: 4096 })
        );
        assert_eq!(ValueDist::parse("zipf:1024"), Some(ValueDist::Zipf { max: 1024 }));
        for bad in ["", "fixed", "fixed:x", "uniform:9:3", "zipf:0", "pareto:4", "fixed:1:2"] {
            assert_eq!(ValueDist::parse(bad), None, "{bad:?} should not parse");
        }
        // Sizes beyond the codec's MAX_VALUE are rejected at the flag,
        // not discovered as a mid-run protocol error.
        let over = (fresca_net::MAX_VALUE as u64 + 1).to_string();
        assert_eq!(ValueDist::parse(&format!("fixed:{over}")), None);
        assert_eq!(ValueDist::parse(&format!("uniform:1:{over}")), None);
        // Samples are deterministic and within bounds.
        let d = ValueDist::Uniform { min: 16, max: 4096 };
        for i in 0..1000u64 {
            let n = d.sample(op_hash(i, i));
            assert!((16..=4096).contains(&n), "{n}");
            assert_eq!(n, d.sample(op_hash(i, i)), "deterministic");
        }
        let z = ValueDist::Zipf { max: 4096 };
        let mut small = 0;
        for i in 0..1000u64 {
            let n = z.sample(op_hash(i, 7));
            assert!((1..=4096).contains(&n), "{n}");
            if n <= 64 {
                small += 1;
            }
        }
        assert!(small > 400, "zipf-sized draws skew small, got {small}/1000 ≤ 64B");
    }

    #[test]
    fn served_empty_value_counts_as_mismatch_when_writers_never_write_empty() {
        use crate::client::GetOutcome;
        use fresca_net::GetStatus;

        let served_empty = |track: &mut Tracker, res: &mut WorkerResult| {
            let id = RequestId(1);
            track.issued(id, Instant::now());
            track
                .completed(
                    res,
                    id,
                    Response::Get {
                        key: 7,
                        outcome: GetOutcome {
                            status: GetStatus::Fresh,
                            version: 1,
                            value: bytes::Bytes::new(),
                            age: fresca_sim::SimDuration::ZERO,
                        },
                    },
                    Instant::now(),
                )
                .unwrap();
        };
        // All writers send ≥16 bytes: a served empty value is a payload
        // drop, even though an empty slice matches its own pattern.
        let mut track = Tracker::new(Some(ValueDist::Uniform { min: 16, max: 64 }));
        let mut res = WorkerResult::default();
        served_empty(&mut track, &mut res);
        assert_eq!(res.checksum_mismatches, 1);
        // Trace-driven sizes may legitimately be zero: not flagged.
        let mut track = Tracker::new(None);
        let mut res = WorkerResult::default();
        served_empty(&mut track, &mut res);
        assert_eq!(res.checksum_mismatches, 0);
    }

    #[test]
    fn identity_threads_through_single_and_cluster_reports() {
        let mut report = build_report(WorkerResult::default(), Duration::from_secs(1));
        assert_eq!(report.scenario, "", "identity is opt-in");
        report.set_identity("flash-crowd", 42);
        assert_eq!((report.scenario.as_str(), report.seed), ("flash-crowd", 42));
        let shown = report.to_string();
        assert!(shown.contains("schedule: flash-crowd (seed 42)"), "{shown}");
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"scenario\"") && json.contains("\"seed\""), "{json}");

        let mut cluster = ClusterReport {
            aggregate: build_report(WorkerResult::default(), Duration::from_secs(1)),
            nodes: vec![NodeReport {
                addr: "a:1".into(),
                report: build_report(WorkerResult::default(), Duration::from_secs(1)),
            }],
            chaos: None,
        };
        cluster.set_identity("diurnal", 7);
        assert_eq!(cluster.aggregate.scenario, "diurnal");
        assert_eq!(cluster.nodes[0].report.seed, 7);
    }

    #[test]
    fn empty_run_reports_zeros() {
        let report = build_report(WorkerResult::default(), Duration::from_millis(1));
        assert_eq!(report.ops, 0);
        assert_eq!(report.hit_ratio, 0.0);
        assert_eq!(report.mean_latency_us, 0.0);
        assert_eq!(report.p999_latency_us, 0.0);
        assert!(report.is_clean());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile(&sorted, 0.50), 500.0);
        assert_eq!(percentile(&sorted, 0.99), 990.0);
        assert_eq!(percentile(&sorted, 0.999), 999.0);
        assert_eq!(percentile(&sorted, 1.0), 1000.0);
        assert_eq!(percentile(&[42], 0.999), 42.0);
    }

    #[test]
    fn report_serializes_to_json() {
        let report = build_report(
            WorkerResult { gets: 2, puts: 1, fresh: 2, latencies_us: vec![5, 7, 9], ..Default::default() },
            Duration::from_secs(1),
        );
        let json = serde_json::to_string(&report).unwrap();
        for field in ["ops_per_sec", "hit_ratio", "p50_latency_us", "p99_latency_us", "p999_latency_us", "version_anomalies"] {
            assert!(json.contains(field), "JSON missing {field}: {json}");
        }
    }
}
