//! Closed- and open-loop load generation against a running server.
//!
//! Both modes replay the same [`TimedOp`] schedule (a `fresca-workload`
//! trace mapped through [`fresca_workload::replay::ReplayConfig`]):
//!
//! * **Closed loop** — `connections` worker threads, each with its own
//!   TCP connection, issue their share of the schedule back-to-back:
//!   offered load tracks service capacity, which is how you measure peak
//!   throughput.
//! * **Open loop** — one connection sends each operation at its
//!   scheduled deadline, sleeping between sends: offered load is fixed
//!   by the trace's (rescaled) arrival process, which is how you measure
//!   behaviour at a given request rate. Operations that fall behind
//!   schedule are counted and the worst lateness reported, so an
//!   overloaded run is visible instead of silently degrading into a
//!   closed loop.
//!
//! Every worker verifies what it reads: the server's versions are
//! globally monotone, so a served read whose version is older than the
//! last write this worker got acknowledged for that key is a consistency
//! violation, counted in [`LoadReport::version_anomalies`].

use crate::client::CacheClient;
use fresca_net::GetStatus;
use fresca_workload::{TimedOp, WireOp};
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Load-generation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `connections` workers issue ops back-to-back (throughput probe).
    Closed {
        /// Number of concurrent connections (worker threads).
        connections: usize,
    },
    /// One connection paced by the schedule's timestamps (rate probe).
    Open,
}

/// Load generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadGenConfig {
    /// Closed or open loop.
    pub mode: Mode,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig { mode: Mode::Closed { connections: 4 } }
    }
}

/// What a load-generation run observed, end to end.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Wall-clock duration of the run in seconds.
    pub wall_secs: f64,
    /// Operations completed (gets + puts).
    pub ops: u64,
    /// Reads issued.
    pub gets: u64,
    /// Writes issued.
    pub puts: u64,
    /// Completed operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Reads served fresh.
    pub fresh: u64,
    /// Reads served stale-within-bound.
    pub stale_served: u64,
    /// Reads refused: the entry existed but could not satisfy the
    /// staleness bound. These are the run's *staleness violations* — the
    /// quantity the paper's freshness machinery exists to minimise.
    pub staleness_violations: u64,
    /// Reads that found no entry.
    pub misses: u64,
    /// Served reads ÷ issued reads.
    pub hit_ratio: f64,
    /// Served reads whose version regressed below a write this worker
    /// had acknowledged — should be zero.
    pub version_anomalies: u64,
    /// Open loop only: ops sent after their deadline.
    pub late_ops: u64,
    /// Open loop only: worst lateness in milliseconds.
    pub max_lateness_ms: f64,
    /// Mean request latency in microseconds.
    pub mean_latency_us: f64,
    /// 99th-percentile request latency in microseconds.
    pub p99_latency_us: f64,
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} ops in {:.3}s  ({:.0} ops/s; latency mean {:.1}us p99 {:.1}us)",
            self.ops, self.wall_secs, self.ops_per_sec, self.mean_latency_us, self.p99_latency_us
        )?;
        writeln!(
            f,
            "reads: {} ({} fresh, {} stale-served, {} refused, {} miss; hit ratio {:.2}%)",
            self.gets,
            self.fresh,
            self.stale_served,
            self.staleness_violations,
            self.misses,
            100.0 * self.hit_ratio
        )?;
        writeln!(f, "writes: {}", self.puts)?;
        writeln!(
            f,
            "staleness violations: {}   version anomalies: {}",
            self.staleness_violations, self.version_anomalies
        )?;
        if self.late_ops > 0 {
            writeln!(
                f,
                "behind schedule: {} ops, worst {:.3}ms",
                self.late_ops, self.max_lateness_ms
            )?;
        }
        Ok(())
    }
}

/// Per-worker accumulator, merged into the final [`LoadReport`].
#[derive(Debug, Default)]
struct WorkerResult {
    gets: u64,
    puts: u64,
    fresh: u64,
    stale_served: u64,
    refused: u64,
    misses: u64,
    version_anomalies: u64,
    late_ops: u64,
    max_lateness: Duration,
    latencies_us: Vec<u64>,
}

impl WorkerResult {
    fn merge(&mut self, other: WorkerResult) {
        self.gets += other.gets;
        self.puts += other.puts;
        self.fresh += other.fresh;
        self.stale_served += other.stale_served;
        self.refused += other.refused;
        self.misses += other.misses;
        self.version_anomalies += other.version_anomalies;
        self.late_ops += other.late_ops;
        self.max_lateness = self.max_lateness.max(other.max_lateness);
        self.latencies_us.extend(other.latencies_us);
    }
}

/// Replay `ops` against the server at `addr` and report what happened.
pub fn run(addr: SocketAddr, ops: &[TimedOp], config: &LoadGenConfig) -> io::Result<LoadReport> {
    let started = Instant::now();
    let merged = match config.mode {
        Mode::Closed { connections } => {
            assert!(connections >= 1, "need at least one connection");
            let results: Vec<io::Result<WorkerResult>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..connections)
                    .map(|w| {
                        s.spawn(move || {
                            let mut client = CacheClient::connect(addr)?;
                            // Strided partition: worker w takes ops w,
                            // w+N, w+2N, … so key locality and the
                            // read/write interleaving stay roughly
                            // uniform across workers.
                            run_ops(
                                &mut client,
                                ops.iter().skip(w).step_by(connections),
                                None,
                            )
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("loadgen worker panicked")).collect()
            });
            let mut merged = WorkerResult::default();
            for r in results {
                merged.merge(r?);
            }
            merged
        }
        Mode::Open => {
            let mut client = CacheClient::connect(addr)?;
            run_ops(&mut client, ops.iter(), Some(started))?
        }
    };
    let wall = started.elapsed();
    Ok(build_report(merged, wall))
}

/// Issue a sequence of ops on one connection. With `pace`, sleep until
/// each op's deadline (open loop); without, run back-to-back (closed
/// loop).
fn run_ops<'a>(
    client: &mut CacheClient,
    ops: impl Iterator<Item = &'a TimedOp>,
    pace: Option<Instant>,
) -> io::Result<WorkerResult> {
    let mut res = WorkerResult::default();
    // Last version the server acknowledged to *this* worker, per key.
    let mut acked: HashMap<u64, u64> = HashMap::new();
    for op in ops {
        if let Some(start) = pace {
            let deadline = start + Duration::from_nanos(op.at.as_nanos());
            let now = Instant::now();
            if let Some(wait) = deadline.checked_duration_since(now) {
                std::thread::sleep(wait);
            } else {
                res.late_ops += 1;
                res.max_lateness = res.max_lateness.max(now.duration_since(deadline));
            }
        }
        let issued = Instant::now();
        match op.op {
            WireOp::Get { key, max_staleness } => {
                res.gets += 1;
                let outcome = client.get(key, max_staleness)?;
                match outcome.status {
                    GetStatus::Fresh => res.fresh += 1,
                    GetStatus::ServedStale => res.stale_served += 1,
                    GetStatus::RefusedStale => res.refused += 1,
                    GetStatus::Miss => res.misses += 1,
                }
                if outcome.is_served() {
                    if let Some(&expected) = acked.get(&key) {
                        if outcome.version < expected {
                            res.version_anomalies += 1;
                        }
                    }
                }
            }
            WireOp::Put { key, value_size, ttl } => {
                res.puts += 1;
                let version = client.put(key, value_size, ttl)?;
                acked.insert(key, version);
            }
        }
        res.latencies_us.push(issued.elapsed().as_micros() as u64);
    }
    Ok(res)
}

fn build_report(mut r: WorkerResult, wall: Duration) -> LoadReport {
    let ops = r.gets + r.puts;
    let wall_secs = wall.as_secs_f64();
    r.latencies_us.sort_unstable();
    let mean = if r.latencies_us.is_empty() {
        0.0
    } else {
        r.latencies_us.iter().sum::<u64>() as f64 / r.latencies_us.len() as f64
    };
    // Nearest-rank percentile: the smallest sample ≥ 99% of the others.
    let p99_idx = (r.latencies_us.len() * 99).div_ceil(100).saturating_sub(1);
    let p99 = r.latencies_us.get(p99_idx).copied().unwrap_or(0) as f64;
    LoadReport {
        wall_secs,
        ops,
        gets: r.gets,
        puts: r.puts,
        ops_per_sec: if wall_secs > 0.0 { ops as f64 / wall_secs } else { 0.0 },
        fresh: r.fresh,
        stale_served: r.stale_served,
        staleness_violations: r.refused,
        misses: r.misses,
        hit_ratio: if r.gets > 0 { (r.fresh + r.stale_served) as f64 / r.gets as f64 } else { 0.0 },
        version_anomalies: r.version_anomalies,
        late_ops: r.late_ops,
        max_lateness_ms: r.max_lateness.as_secs_f64() * 1e3,
        mean_latency_us: mean,
        p99_latency_us: p99,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_and_report_divides() {
        let mut a = WorkerResult {
            gets: 10,
            puts: 5,
            fresh: 6,
            stale_served: 1,
            refused: 2,
            misses: 1,
            latencies_us: vec![10, 20],
            ..Default::default()
        };
        let b = WorkerResult {
            gets: 10,
            puts: 0,
            fresh: 10,
            latencies_us: vec![30, 40],
            ..Default::default()
        };
        a.merge(b);
        let report = build_report(a, Duration::from_secs(2));
        assert_eq!(report.ops, 25);
        assert_eq!(report.gets, 20);
        assert_eq!(report.ops_per_sec, 12.5);
        assert_eq!(report.staleness_violations, 2);
        assert!((report.hit_ratio - 17.0 / 20.0).abs() < 1e-9);
        assert_eq!(report.mean_latency_us, 25.0);
        assert_eq!(report.p99_latency_us, 40.0);
        // Display stays well-formed.
        let shown = report.to_string();
        assert!(shown.contains("25 ops"));
        assert!(shown.contains("staleness violations: 2"));
    }

    #[test]
    fn empty_run_reports_zeros() {
        let report = build_report(WorkerResult::default(), Duration::from_millis(1));
        assert_eq!(report.ops, 0);
        assert_eq!(report.hit_ratio, 0.0);
        assert_eq!(report.mean_latency_us, 0.0);
    }
}
