//! A cluster-aware cache client: one [`PipelinedClient`] per node,
//! requests routed by consistent hashing.
//!
//! [`ClusterClient`] is the multi-node sibling of
//! [`CacheClient`](crate::CacheClient): it holds a connection to every
//! member of a [`HashRing`] and routes each `get`/`put` to the node that
//! owns the key. Routing is a pure function of the member list (see
//! [`crate::ring`]), so a cluster client, the load generator, and a
//! store-push node all agree on placement without exchanging any state.
//!
//! The per-call interface is blocking (submit on the owning node's
//! pipelined connection, then wait for that one completion); callers
//! that want deep pipelining against many nodes drive per-node
//! [`PipelinedClient`]s directly — that is exactly what the load
//! generator's `--addrs` fan-out does.

use crate::client::{GetOutcome, PipelinedClient, Response};
use crate::ring::HashRing;
use bytes::Bytes;
use fresca_sim::SimDuration;
use std::io;

/// A client for a consistent-hash cluster of cache nodes.
///
/// Connect with [`ClusterClient::connect`], passing every member's
/// address; the ring is built from the addresses *as given* (they are
/// the node names), so all participants must use the same spelling of
/// each address.
#[derive(Debug)]
pub struct ClusterClient {
    ring: HashRing,
    /// One pipelined connection per ring member, indexed like
    /// `ring.nodes()`.
    conns: Vec<PipelinedClient>,
}

impl ClusterClient {
    /// Connect to every node of the cluster. `vnodes` is the ring's
    /// virtual-node count and must match the other participants'
    /// (use [`crate::ring::DEFAULT_VNODES`] unless you have a reason).
    pub fn connect<S: AsRef<str>>(addrs: &[S], vnodes: usize) -> io::Result<Self> {
        let ring = HashRing::try_from_members(vnodes, addrs)?;
        let conns = ring
            .nodes()
            .iter()
            .map(|addr| PipelinedClient::connect(addr.as_str()))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ClusterClient { ring, conns })
    }

    /// The ring this client routes by.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Number of member nodes.
    pub fn node_count(&self) -> usize {
        self.conns.len()
    }

    /// Address of the node that owns `key`. Deterministic: every
    /// `ClusterClient` over the same member list gives the same answer.
    pub fn addr_for(&self, key: u64) -> &str {
        self.ring.node_for(key).expect("non-empty ring")
    }

    /// Index (into the member list) of the node that owns `key`.
    pub fn node_index_for(&self, key: u64) -> usize {
        self.ring.node_index_for(key).expect("non-empty ring")
    }

    /// The pipelined connection to member `index`, for callers that
    /// want to drive a node directly (tests, fan-out loops).
    pub fn node_client(&mut self, index: usize) -> &mut PipelinedClient {
        &mut self.conns[index]
    }

    /// Write `key` on its owning node; returns the version that node
    /// assigned (monotone per node, hence per key — a key never changes
    /// node while membership is stable).
    pub fn put(
        &mut self,
        key: u64,
        value: impl Into<Bytes>,
        ttl: Option<SimDuration>,
    ) -> io::Result<u64> {
        let node = self.node_index_for(key);
        let conn = &mut self.conns[node];
        let id = conn.submit_put(key, value, ttl)?;
        let (rid, resp) = conn.complete()?;
        match resp {
            Response::Put { key: k, version } if rid == id && k == key => Ok(version),
            other => Err(route_error(key, &other)),
        }
    }

    /// Staleness-bounded read of `key` from its owning node (`None` =
    /// any age).
    pub fn get(
        &mut self,
        key: u64,
        max_staleness: Option<SimDuration>,
    ) -> io::Result<GetOutcome> {
        let node = self.node_index_for(key);
        let conn = &mut self.conns[node];
        let id = conn.submit_get(key, max_staleness)?;
        let (rid, resp) = conn.complete()?;
        match resp {
            Response::Get { key: k, outcome } if rid == id && k == key => Ok(outcome),
            other => Err(route_error(key, &other)),
        }
    }
}

fn route_error(key: u64, resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected completion for key {key}: {resp:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{self, ServerConfig};

    fn spawn_cluster(n: usize) -> (Vec<server::ServerHandle>, Vec<String>) {
        let handles: Vec<_> = (0..n)
            .map(|_| server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind"))
            .collect();
        let addrs = handles.iter().map(|h| h.addr().to_string()).collect();
        (handles, addrs)
    }

    #[test]
    fn rejects_empty_and_duplicate_member_lists() {
        let err = ClusterClient::connect::<&str>(&[], 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let (handles, addrs) = spawn_cluster(1);
        let dup = [addrs[0].clone(), addrs[0].clone()];
        let err = ClusterClient::connect(&dup, 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        for h in handles {
            h.shutdown();
        }
    }

    #[test]
    fn routing_is_deterministic_across_clients() {
        let (handles, addrs) = spawn_cluster(3);
        let a = ClusterClient::connect(&addrs, 64).unwrap();
        let b = ClusterClient::connect(&addrs, 64).unwrap();
        for key in 0..2_000u64 {
            assert_eq!(a.addr_for(key), b.addr_for(key), "key {key}");
            assert_eq!(a.node_index_for(key), b.node_index_for(key));
            // The client's routing is exactly the ring's.
            assert_eq!(a.addr_for(key), a.ring().node_for(key).unwrap());
        }
        for h in handles {
            h.shutdown();
        }
    }

    #[test]
    fn puts_and_gets_land_on_the_owning_node() {
        let (handles, addrs) = spawn_cluster(2);
        let mut client = ClusterClient::connect(&addrs, 64).unwrap();
        for key in 0..64u64 {
            let v = client.put(key, fresca_net::payload::pattern(key, 16), None).unwrap();
            assert!(v > 0);
            let got = client.get(key, None).unwrap();
            assert!(got.is_served(), "key {key}");
            assert_eq!(got.version, v);
            assert!(fresca_net::payload::verify(key, &got.value), "key {key} payload intact");
        }
        // Each node served exactly the keys the ring assigns it.
        let ring = client.ring().clone();
        let per_node = ring.partition(0..64u64);
        for (i, h) in handles.into_iter().enumerate() {
            let stats = h.shutdown();
            assert_eq!(stats.puts, per_node[i].len() as u64, "node {i} put count");
            assert_eq!(stats.gets, per_node[i].len() as u64, "node {i} get count");
        }
    }
}
