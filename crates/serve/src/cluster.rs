//! A cluster-aware cache client: one [`PipelinedClient`] per node,
//! requests routed by consistent hashing, the ring swapped live when
//! the membership epoch moves.
//!
//! [`ClusterClient`] is the multi-node sibling of
//! [`CacheClient`]: it holds a connection to every
//! member of a [`HashRing`] and routes each `get`/`put` to the node that
//! owns the key. Routing is a pure function of the member list (see
//! [`crate::ring`]), so a cluster client, the load generator, and a
//! store-push node all agree on placement without exchanging any state.
//!
//! ## Live membership
//!
//! The member list the client was constructed with is only its
//! *starting* view. [`ClusterClient::refresh`] asks the reachable
//! members for their current `(epoch, members)` (a `RingReq` per node)
//! and adopts the newest strictly-newer view, rebuilding the ring and
//! the connection set — connections to members present in both views
//! are kept, so a refresh that only drops a dead node costs nothing on
//! the survivors. `put`/`get` do this automatically: a
//! connection-level failure triggers a bounded retry loop
//! ([`Backoff`]-paced) that refreshes the view and re-routes the
//! operation, so a node death costs callers at most the retry budget —
//! not an error — once a survivor has processed the leave.
//!
//! The per-call interface is blocking (submit on the owning node's
//! pipelined connection, then wait for that one completion); callers
//! that want deep pipelining against many nodes drive per-node
//! [`PipelinedClient`]s directly — that is exactly what the load
//! generator's `--addrs` fan-out does.

use crate::client::{Backoff, CacheClient, ConnError, GetOutcome, PipelinedClient, Response};
use crate::ring::HashRing;
use bytes::Bytes;
use fresca_sim::SimDuration;
use std::collections::HashMap;
use std::io;
use std::time::Duration;

/// A client for a consistent-hash cluster of cache nodes.
///
/// Connect with [`ClusterClient::connect`], passing every member's
/// address; the ring is built from the addresses *as given* (they are
/// the node names), so all participants must use the same spelling of
/// each address.
#[derive(Debug)]
pub struct ClusterClient {
    ring: HashRing,
    /// Epoch of the adopted view; 0 until a refresh learns a newer one.
    epoch: u64,
    /// Member names of the adopted view, in ring order.
    members: Vec<String>,
    /// One pipelined connection per ring member, indexed like
    /// `ring.nodes()`.
    conns: Vec<PipelinedClient>,
    vnodes: usize,
    /// Retry pacing for the re-route loop in [`Self::put`]/[`Self::get`].
    retry: Backoff,
}

impl ClusterClient {
    /// Connect to every node of the cluster. `vnodes` is the ring's
    /// virtual-node count and must match the other participants'
    /// (use [`crate::ring::DEFAULT_VNODES`] unless you have a reason).
    pub fn connect<S: AsRef<str>>(addrs: &[S], vnodes: usize) -> io::Result<Self> {
        let ring = HashRing::try_from_members(vnodes, addrs)?;
        let members: Vec<String> = ring.nodes().to_vec();
        let conns = members
            .iter()
            .map(|addr| PipelinedClient::connect(addr.as_str()))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ClusterClient {
            ring,
            epoch: 0,
            members,
            conns,
            vnodes,
            // Modest default: 4 attempts, 50ms..1s jittered. Seeded
            // from a constant so default-configured runs reproduce.
            retry: Backoff::new(Duration::from_millis(50), Duration::from_secs(1), 4, 0xC1A5),
        })
    }

    /// Replace the retry policy used by the `put`/`get` re-route loop.
    pub fn set_retry(&mut self, policy: Backoff) {
        self.retry = policy;
    }

    /// The ring this client routes by.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Epoch of the adopted membership view (0 = the constructed view,
    /// never refreshed past it).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Members of the adopted view, in ring order.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Number of member nodes.
    pub fn node_count(&self) -> usize {
        self.conns.len()
    }

    /// Address of the node that owns `key`. Deterministic: every
    /// `ClusterClient` over the same member list gives the same answer.
    pub fn addr_for(&self, key: u64) -> &str {
        self.members[self.node_index_for(key)].as_str()
    }

    /// Index (into the member list) of the node that owns `key`. The
    /// ring is non-empty by construction (connect and view swaps both
    /// refuse empty lists), so the fallback index is unreachable.
    pub fn node_index_for(&self, key: u64) -> usize {
        self.ring.node_index_for(key).unwrap_or(0)
    }

    /// The pipelined connection to member `index`, for callers that
    /// want to drive a node directly (tests, fan-out loops).
    pub fn node_client(&mut self, index: usize) -> &mut PipelinedClient {
        &mut self.conns[index]
    }

    /// Ask every reachable member for its membership view and adopt the
    /// newest one that is strictly newer than ours, rebuilding the ring
    /// and connections. Returns `true` when the view changed. Members
    /// that cannot be reached or answer garbage are skipped — one live
    /// node is enough to learn the current epoch.
    pub fn refresh(&mut self) -> io::Result<bool> {
        let mut best: Option<(u64, Vec<String>)> = None;
        for member in &self.members {
            let view = CacheClient::connect(member.as_str()).and_then(|mut c| c.ring());
            if let Ok((epoch, members)) = view {
                let newer = epoch > self.epoch
                    && !members.is_empty()
                    && best.as_ref().is_none_or(|(e, _)| epoch > *e);
                if newer {
                    best = Some((epoch, members));
                }
            }
        }
        match best {
            Some((epoch, members)) => self.swap_view(epoch, members).map(|_| true),
            None => Ok(false),
        }
    }

    /// Adopt `(epoch, members)` as the routing view: rebuild the ring,
    /// keep connections to members present in both views, connect to
    /// the new ones. On any failure the old view stays in place.
    pub fn swap_view(&mut self, epoch: u64, members: Vec<String>) -> io::Result<()> {
        let ring = HashRing::try_from_members(self.vnodes, &members)?;
        // Pair up surviving connections by member name without tearing
        // them down; drained-but-alive sockets keep their pipelines.
        let mut kept: HashMap<String, PipelinedClient> =
            self.members.drain(..).zip(self.conns.drain(..)).collect();
        let mut conns = Vec::with_capacity(members.len());
        for member in &members {
            let conn = match kept.remove(member) {
                Some(alive) => alive,
                None => PipelinedClient::connect(member.as_str())?,
            };
            conns.push(conn);
        }
        self.ring = ring;
        self.epoch = epoch;
        self.members = members;
        self.conns = conns;
        Ok(())
    }

    /// Write `key` on its owning node; returns the version that node
    /// assigned (monotone per node, hence per key — a key only changes
    /// node when the membership epoch moves). Connection-level failures
    /// are retried through [`Self::refresh`]: the write may be
    /// re-submitted after a re-route, in which case the version
    /// returned is the one the surviving owner assigned.
    pub fn put(
        &mut self,
        key: u64,
        value: impl Into<Bytes>,
        ttl: Option<SimDuration>,
    ) -> io::Result<u64> {
        let value = value.into();
        self.with_owner(key, |conn| {
            let id = conn.submit_put(key, value.clone(), ttl)?;
            let (rid, resp) = conn.complete()?;
            match resp {
                Response::Put { key: k, version } if rid == id && k == key => Ok(version),
                other => Err(route_error(key, &other)),
            }
        })
    }

    /// Staleness-bounded read of `key` from its owning node (`None` =
    /// any age). Connection-level failures re-route like [`Self::put`].
    pub fn get(
        &mut self,
        key: u64,
        max_staleness: Option<SimDuration>,
    ) -> io::Result<GetOutcome> {
        self.with_owner(key, |conn| {
            let id = conn.submit_get(key, max_staleness)?;
            let (rid, resp) = conn.complete()?;
            match resp {
                Response::Get { key: k, outcome } if rid == id && k == key => Ok(outcome),
                other => Err(route_error(key, &other)),
            }
        })
    }

    /// Run `op` against `key`'s owner, retrying through view refreshes
    /// on connection-level failures. Protocol-level surprises
    /// (`InvalidData`) are not retried — a server answering garbage is
    /// a bug, not a blip.
    fn with_owner<T>(
        &mut self,
        key: u64,
        mut op: impl FnMut(&mut PipelinedClient) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut policy = self.retry.clone();
        let mut last: Option<io::Error> = None;
        for attempt in 0..policy.max_attempts() {
            let delay = policy.delay(attempt);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            if attempt > 0 {
                // The owner may have changed (a survivor processed the
                // leave); a failed refresh is fine — we still retry the
                // reconnect below against the old view.
                let _ = self.refresh();
            }
            let node = self.node_index_for(key);
            match op(&mut self.conns[node]) {
                Ok(v) => return Ok(v),
                Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(e),
                Err(e) => {
                    // The connection is suspect; replace it in place so
                    // the next attempt starts clean. If the node is
                    // down this fails and the refresh above re-routes.
                    if let Ok(fresh) = PipelinedClient::connect(self.members[node].as_str()) {
                        self.conns[node] = fresh;
                    }
                    last = Some(e);
                }
            }
        }
        let attempts = policy.max_attempts();
        let last = last.unwrap_or_else(|| io::Error::other("retry loop made no attempt"));
        Err(ConnError::RetriesExhausted { attempts, last }.into())
    }
}

fn route_error(key: u64, resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected completion for key {key}: {resp:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{self, ServerConfig};

    fn spawn_cluster(n: usize) -> (Vec<server::ServerHandle>, Vec<String>) {
        let handles: Vec<_> = (0..n)
            .map(|_| server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind"))
            .collect();
        let addrs = handles.iter().map(|h| h.addr().to_string()).collect();
        (handles, addrs)
    }

    #[test]
    fn rejects_empty_and_duplicate_member_lists() {
        let err = ClusterClient::connect::<&str>(&[], 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let (handles, addrs) = spawn_cluster(1);
        let dup = [addrs[0].clone(), addrs[0].clone()];
        let err = ClusterClient::connect(&dup, 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        for h in handles {
            h.shutdown();
        }
    }

    #[test]
    fn routing_is_deterministic_across_clients() {
        let (handles, addrs) = spawn_cluster(3);
        let a = ClusterClient::connect(&addrs, 64).unwrap();
        let b = ClusterClient::connect(&addrs, 64).unwrap();
        for key in 0..2_000u64 {
            assert_eq!(a.addr_for(key), b.addr_for(key), "key {key}");
            assert_eq!(a.node_index_for(key), b.node_index_for(key));
            // The client's routing is exactly the ring's.
            assert_eq!(a.addr_for(key), a.ring().node_for(key).unwrap());
        }
        for h in handles {
            h.shutdown();
        }
    }

    #[test]
    fn puts_and_gets_land_on_the_owning_node() {
        let (handles, addrs) = spawn_cluster(2);
        let mut client = ClusterClient::connect(&addrs, 64).unwrap();
        for key in 0..64u64 {
            let v = client.put(key, fresca_net::payload::pattern(key, 16), None).unwrap();
            assert!(v > 0);
            let got = client.get(key, None).unwrap();
            assert!(got.is_served(), "key {key}");
            assert_eq!(got.version, v);
            assert!(fresca_net::payload::verify(key, &got.value), "key {key} payload intact");
        }
        // Each node served exactly the keys the ring assigns it.
        let ring = client.ring().clone();
        let per_node = ring.partition(0..64u64);
        for (i, h) in handles.into_iter().enumerate() {
            let stats = h.shutdown();
            assert_eq!(stats.puts, per_node[i].len() as u64, "node {i} put count");
            assert_eq!(stats.gets, per_node[i].len() as u64, "node {i} get count");
        }
    }

    #[test]
    fn refresh_adopts_newer_views_and_swap_keeps_survivor_conns() {
        let (handles, addrs) = spawn_cluster(3);
        let mut client = ClusterClient::connect(&addrs, 64).unwrap();
        assert_eq!(client.epoch(), 0);
        // Seed the cluster's own membership to match the client's list.
        let mut admin = CacheClient::connect(addrs[0].as_str()).unwrap();
        for a in &addrs {
            admin.join(a).unwrap();
        }
        // The servers are now at epoch 3; the client learns it on refresh.
        assert!(client.refresh().unwrap());
        assert_eq!(client.epoch(), 3);
        assert_eq!(client.members(), addrs.as_slice());
        // A second refresh at the same epoch is a no-op.
        assert!(!client.refresh().unwrap());
        // An operator removes node 2; the client's next refresh drops it.
        admin.leave(&addrs[2]).unwrap();
        assert!(client.refresh().unwrap());
        assert_eq!(client.epoch(), 4);
        assert_eq!(client.members(), &addrs[..2]);
        // Routing and the blocking API still work over the shrunken ring.
        for key in 0..32u64 {
            let v = client.put(key, fresca_net::payload::pattern(key, 8), None).unwrap();
            assert!(client.get(key, None).unwrap().version >= v);
            assert!(client.node_index_for(key) < 2);
        }
        for h in handles {
            h.shutdown();
        }
    }

    #[test]
    fn node_death_reroutes_after_leave() {
        let (mut handles, addrs) = spawn_cluster(3);
        let mut client = ClusterClient::connect(&addrs, 64).unwrap();
        let mut admin = CacheClient::connect(addrs[0].as_str()).unwrap();
        for a in &addrs {
            admin.join(a).unwrap();
        }
        client.refresh().unwrap();
        // Write everything once while all three are up.
        for key in 0..96u64 {
            client.put(key, fresca_net::payload::pattern(key, 8), None).unwrap();
        }
        // Kill node 2 abruptly, then tell a survivor it left.
        let victim = addrs[2].clone();
        handles.remove(2).shutdown();
        admin.leave(&victim).unwrap();
        // Every key is still reachable: keys owned by the dead node
        // re-route to survivors (as misses — cold is fine, stale is
        // not), the rest are served where they were.
        for key in 0..96u64 {
            let got = client.get(key, None).unwrap();
            assert!(
                got.is_served() || got.status == fresca_net::GetStatus::Miss,
                "key {key}: {got:?}"
            );
        }
        assert_eq!(client.node_count(), 2, "dead node dropped from the view");
        for h in handles {
            h.shutdown();
        }
    }
}
