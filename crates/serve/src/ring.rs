//! Consistent-hash placement of the key space across cache nodes.
//!
//! A [`HashRing`] maps every `u64` key to one member node the classic
//! way: each node projects `vnodes` *virtual nodes* onto a `u64` circle
//! (hash points derived from the node's name and the replica index), a
//! key hashes onto the same circle, and the key belongs to the node
//! owning the first point at or clockwise after it. Two properties fall
//! out of the construction and are what the serving tier relies on:
//!
//! * **Deterministic placement.** A node's points depend only on its
//!   name, never on membership history or insertion order, so every
//!   participant — cluster clients, the load generator, the store-push
//!   node — derives the *same* owner for every key from the member list
//!   alone. No coordination, no exchanged routing table.
//! * **Minimal remapping.** Adding a node only inserts that node's
//!   points, so the only keys that change owner are the ones the new
//!   node now owns — about `K/n` of `K` keys over `n` members — and
//!   removing a node moves only the keys it owned. A modulo scheme would
//!   reshuffle nearly everything on every membership change.
//!
//! Virtual nodes trade lookup-table size for balance: with `v` points
//! per node the per-node load imbalance concentrates around `1/sqrt(v)`.
//! The default of 128 keeps nodes within a few percent of each other
//! without making membership changes expensive.

/// Default number of virtual nodes per member.
pub const DEFAULT_VNODES: usize = 128;

/// FNV-1a over a byte string: the seed hash for a node's point stream.
/// Stability matters here — the ring is a *wire-adjacent* contract
/// (every cluster participant must agree on placement), so the hash is
/// fixed by this module, not borrowed from `std`'s unspecified hasher.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates consecutive replica indices and
/// spreads key identities uniformly over the circle.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Where `key` lands on the circle.
fn key_point(key: u64) -> u64 {
    mix(key)
}

/// Where replica `replica` of node `name` lands on the circle.
fn node_point(name: &str, replica: u32) -> u64 {
    mix(fnv1a(name.as_bytes()) ^ (replica as u64).rotate_left(17))
}

/// A consistent-hash ring over named nodes (names are typically
/// `host:port` addresses).
///
/// ```
/// use fresca_serve::ring::HashRing;
///
/// let mut ring = HashRing::new(128);
/// ring.add_node("10.0.0.1:7440");
/// ring.add_node("10.0.0.2:7440");
/// ring.add_node("10.0.0.3:7440");
///
/// // Placement is a pure function of (members, key): every participant
/// // computes the same owner.
/// let owner = ring.node_for(42).unwrap().to_string();
/// assert_eq!(ring.node_for(42).unwrap(), owner);
///
/// // Removing an unrelated node does not move the key unless that node
/// // owned it.
/// let other = ring.nodes().iter().find(|n| **n != owner).unwrap().clone();
/// ring.remove_node(&other);
/// assert_eq!(ring.node_for(42).unwrap(), owner);
/// ```
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    /// Member names in insertion order — the stable index space handed
    /// out by [`HashRing::node_index_for`].
    nodes: Vec<String>,
    /// `(point, node index)` sorted by point; rebuilt on membership
    /// change. Ties between points of different nodes break by node
    /// *name* (not index) so placement stays independent of insertion
    /// order.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Empty ring with `vnodes` virtual nodes per member (`0` is
    /// rounded up to 1).
    pub fn new(vnodes: usize) -> Self {
        HashRing { vnodes: vnodes.max(1), nodes: Vec::new(), points: Vec::new() }
    }

    /// Ring with [`DEFAULT_VNODES`] virtual nodes per member.
    pub fn with_default_vnodes() -> Self {
        Self::new(DEFAULT_VNODES)
    }

    /// Build a ring from a member list in one call. Duplicate names are
    /// silently dropped; use [`HashRing::try_from_members`] when an
    /// empty or duplicated member list should be an error.
    pub fn from_nodes<S: AsRef<str>>(vnodes: usize, names: &[S]) -> Self {
        let mut ring = Self::new(vnodes);
        for n in names {
            ring.add_node(n.as_ref());
        }
        ring
    }

    /// Build a ring from a cluster member list, validating it the way
    /// every cluster participant must: at least one member, no
    /// duplicates. This is the one constructor behind
    /// [`crate::ClusterClient`], [`crate::StorePusher`] and the loadgen
    /// fan-out, so membership validation cannot drift between them.
    pub fn try_from_members<S: AsRef<str>>(
        vnodes: usize,
        names: &[S],
    ) -> std::io::Result<Self> {
        use std::io::{Error, ErrorKind};
        if names.is_empty() {
            return Err(Error::new(ErrorKind::InvalidInput, "no cluster members given"));
        }
        let ring = Self::from_nodes(vnodes, names);
        if ring.len() != names.len() {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                "duplicate cluster member address",
            ));
        }
        Ok(ring)
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Member names, in insertion order (the index space of
    /// [`HashRing::node_index_for`]).
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Add a member. Returns `false` (and changes nothing) if a node
    /// with this name is already on the ring.
    pub fn add_node(&mut self, name: &str) -> bool {
        if self.nodes.iter().any(|n| n == name) {
            return false;
        }
        self.nodes.push(name.to_string());
        self.rebuild();
        true
    }

    /// Remove a member by name. Returns `false` if it was not a member.
    pub fn remove_node(&mut self, name: &str) -> bool {
        let Some(pos) = self.nodes.iter().position(|n| n == name) else {
            return false;
        };
        self.nodes.remove(pos);
        self.rebuild();
        true
    }

    /// Recompute the sorted point table from the member list. Each
    /// node's points depend only on its own name, which is what makes
    /// remapping minimal: membership changes add or delete one node's
    /// points and leave every other point exactly where it was.
    fn rebuild(&mut self) {
        self.points.clear();
        self.points.reserve(self.nodes.len() * self.vnodes);
        for (idx, name) in self.nodes.iter().enumerate() {
            for replica in 0..self.vnodes {
                self.points.push((node_point(name, replica as u32), idx));
            }
        }
        // Tie-break equal points by name so the winner does not depend
        // on insertion order.
        self.points
            .sort_by(|a, b| (a.0, self.nodes[a.1].as_str()).cmp(&(b.0, self.nodes[b.1].as_str())));
    }

    /// Index (into [`HashRing::nodes`]) of the member owning `key`, or
    /// `None` on an empty ring.
    pub fn node_index_for(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let p = key_point(key);
        // First point at or clockwise after the key, wrapping at the top.
        let at = self.points.partition_point(|&(point, _)| point < p);
        let (_, idx) = self.points[if at == self.points.len() { 0 } else { at }];
        Some(idx)
    }

    /// Name of the member owning `key`, or `None` on an empty ring.
    pub fn node_for(&self, key: u64) -> Option<&str> {
        self.node_index_for(key).map(|i| self.nodes[i].as_str())
    }

    /// Partition `keys` into one bucket per member (indexed like
    /// [`HashRing::nodes`]), preserving each bucket's input order — the
    /// shape a per-node `Invalidate`/`Update` batch is built from.
    pub fn partition(&self, keys: impl IntoIterator<Item = u64>) -> Vec<Vec<u64>> {
        let mut buckets = vec![Vec::new(); self.nodes.len()];
        for key in keys {
            if let Some(i) = self.node_index_for(key) {
                buckets[i].push(key);
            }
        }
        buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn ring(n: usize) -> HashRing {
        let names: Vec<String> = (0..n).map(|i| format!("10.0.0.{i}:7440")).collect();
        HashRing::from_nodes(128, &names)
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let r = HashRing::new(64);
        assert!(r.is_empty());
        assert_eq!(r.node_for(1), None);
        assert_eq!(r.node_index_for(1), None);
        assert_eq!(r.partition([1, 2, 3]), Vec::<Vec<u64>>::new());
    }

    #[test]
    fn single_node_owns_everything() {
        let mut r = HashRing::new(8);
        assert!(r.add_node("a:1"));
        for k in 0..1000u64 {
            assert_eq!(r.node_for(k), Some("a:1"));
        }
    }

    #[test]
    fn duplicate_add_and_missing_remove_are_noops() {
        let mut r = ring(3);
        assert!(!r.add_node("10.0.0.1:7440"));
        assert_eq!(r.len(), 3);
        assert!(!r.remove_node("nope:1"));
        assert!(r.remove_node("10.0.0.1:7440"));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn placement_is_independent_of_insertion_order() {
        let names = ["c:3", "a:1", "b:2", "d:4"];
        let fwd = HashRing::from_nodes(64, &names);
        let mut rev_names = names;
        rev_names.reverse();
        let rev = HashRing::from_nodes(64, &rev_names);
        for k in 0..10_000u64 {
            assert_eq!(fwd.node_for(k), rev.node_for(k), "key {k}");
        }
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let r = ring(5);
        let mut counts: HashMap<&str, u64> = HashMap::new();
        let keys = 50_000u64;
        for k in 0..keys {
            *counts.entry(r.node_for(k).unwrap()).or_default() += 1;
        }
        assert_eq!(counts.len(), 5, "every node owns some keys");
        let mean = keys as f64 / 5.0;
        for (node, c) in counts {
            let share = c as f64 / mean;
            assert!(
                (0.5..=1.5).contains(&share),
                "node {node} owns {c} keys ({share:.2}x the mean)"
            );
        }
    }

    #[test]
    fn adding_a_node_moves_keys_only_to_it() {
        let before = ring(4);
        let mut after = before.clone();
        after.add_node("10.0.0.99:7440");
        let keys = 20_000u64;
        let mut moved = 0u64;
        for k in 0..keys {
            let old = before.node_for(k).unwrap();
            let new = after.node_for(k).unwrap();
            if old != new {
                moved += 1;
                assert_eq!(new, "10.0.0.99:7440", "key {k} moved to an unrelated node");
            }
        }
        // Expected share for the 5th node is K/5; allow generous slack.
        assert!(moved > 0, "the new node must own something");
        assert!(
            moved as f64 <= keys as f64 / 5.0 * 2.0,
            "moved {moved} of {keys} keys — far more than ~K/n"
        );
    }

    #[test]
    fn removing_a_node_moves_only_its_keys() {
        let before = ring(4);
        let mut after = before.clone();
        after.remove_node("10.0.0.2:7440");
        for k in 0..20_000u64 {
            let old = before.node_for(k).unwrap();
            let new = after.node_for(k).unwrap();
            if old != "10.0.0.2:7440" {
                assert_eq!(old, new, "key {k} moved although its owner stayed");
            } else {
                assert_ne!(new, "10.0.0.2:7440");
            }
        }
    }

    #[test]
    fn partition_covers_all_keys_in_order() {
        let r = ring(3);
        let keys: Vec<u64> = (0..999).collect();
        let buckets = r.partition(keys.iter().copied());
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), keys.len());
        for (i, bucket) in buckets.iter().enumerate() {
            let mut prev = None;
            for &k in bucket {
                assert_eq!(r.node_index_for(k), Some(i));
                assert!(prev.is_none_or(|p| p < k), "bucket order preserved");
                prev = Some(k);
            }
        }
    }
}
