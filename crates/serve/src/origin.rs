//! The origin endpoint: the store side of the freshness control loop.
//!
//! The paper's backend can track invalidations precisely (§3.1) and
//! choose invalidate-vs-update per key (§3.3) *because* cache refetches
//! flow through it. [`OriginState`] is that backend brain: a versioned
//! [`DataStore`], the §3.1 [`InvalidationTracker`], and a live
//! [`AdaptivePolicy`] fed by read statistics from the serving tier. It
//! is shared — behind `Arc<Mutex<_>>` — between two frontends:
//!
//! * the origin **listener** ([`spawn`]): a blocking TCP endpoint cache
//!   servers refetch through. `FetchReq { key }` clears the key's
//!   invalidation mark and answers `FetchResp` with the store's record;
//!   `ReadStats` batches feed the per-key read-frequency estimator.
//! * the **pusher** ([`crate::push::StorePusher`]): applies writes and
//!   flushes per-node `Invalidate`/`Update` batches, consulting the
//!   same tracker for suppression and (under the adaptive policy) the
//!   same estimator for the `E[W]·c_u < c_m + c_i` decision.
//!
//! Sharing one state is the whole point: a refetch arriving on the
//! listener un-suppresses the key for the pusher's next flush, and read
//! traffic observed by the serving tier steers which keys the pusher
//! updates rather than invalidates. The lock discipline is strict —
//! state is mutated under the mutex, but frames are built and sent
//! outside it, so a slow peer never stalls the other frontend.

use crate::ServeClock;
use fresca_core::cost::{CostModel, ObjectSize};
use fresca_core::policy::{AdaptivePolicy, FlushDecision};
use fresca_net::{FramedStream, Message, ReadStat};
use fresca_sketch::{EwEstimator, TopKEw};
use fresca_store::{DataStore, InvalidationTracker, Record};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Value size (bytes) the origin materialises for a key it has never
/// seen written — a refetch must always produce *something* servable.
pub const DEFAULT_ORIGIN_VALUE_SIZE: u32 = 64;

/// Per-entry cap on the read count one `ReadStats` entry may claim, so
/// a corrupt or hostile frame cannot spin the estimator loop for
/// seconds. Honest senders flush far below this.
const MAX_READS_PER_STAT: u32 = 1 << 16;

/// Default top-k capacity / CountMin dimensions for the origin's
/// read-frequency estimator: exact counters for the hot set, sketched
/// tail, a few KiB total.
const ESTIMATOR_TOPK: usize = 256;
const ESTIMATOR_WIDTH: usize = 1024;
const ESTIMATOR_DEPTH: usize = 4;

/// The shared store-side state of the freshness loop. See the module
/// docs for the sharing contract.
pub struct OriginState {
    store: DataStore,
    tracker: InvalidationTracker,
    policy: AdaptivePolicy<Box<dyn EwEstimator + Send>>,
    clock: ServeClock,
    default_size: u32,
    fetches: u64,
    fetches_by_key: HashMap<u64, u64>,
    reads_recorded: u64,
    stats_frames: u64,
}

impl std::fmt::Debug for OriginState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OriginState")
            .field("fetches", &self.fetches)
            .field("reads_recorded", &self.reads_recorded)
            .field("invalidated", &self.tracker.len())
            .finish()
    }
}

impl OriginState {
    /// New state around an explicit read-frequency estimator.
    pub fn new(estimator: Box<dyn EwEstimator + Send>, default_size: u32) -> Self {
        OriginState {
            store: DataStore::new(),
            tracker: InvalidationTracker::new(),
            policy: AdaptivePolicy::new(estimator),
            clock: ServeClock::start(),
            default_size,
            fetches: 0,
            fetches_by_key: HashMap::new(),
            reads_recorded: 0,
            stats_frames: 0,
        }
    }

    /// New state with the default hybrid estimator (exact counters for
    /// the top-k hot keys, CountMin for the tail — §4's recommendation).
    pub fn with_default_estimator(default_size: u32) -> Self {
        let est = TopKEw::new(ESTIMATOR_TOPK, ESTIMATOR_WIDTH, ESTIMATOR_DEPTH);
        OriginState::new(Box::new(est), default_size)
    }

    /// Serve one cache refetch of `key`: clear the §3.1 invalidation
    /// mark (the backchannel that re-arms suppression) and return the
    /// store's record, materialising a default-size one on first touch.
    pub fn serve_fetch(&mut self, key: u64) -> Record {
        self.tracker.clear(key);
        self.fetches += 1;
        *self.fetches_by_key.entry(key).or_insert(0) += 1;
        self.store.read(key, self.default_size)
    }

    /// Fold a `ReadStats` batch from the serving tier into the per-key
    /// read-frequency estimator.
    pub fn record_reads(&mut self, entries: &[ReadStat]) {
        self.stats_frames += 1;
        for e in entries {
            let n = e.reads.min(MAX_READS_PER_STAT);
            for _ in 0..n {
                self.policy.on_read(e.key);
            }
            self.reads_recorded += u64::from(n);
        }
    }

    /// Apply a write: bump the store record and feed the estimator's
    /// write stream. The caller (the pusher) marks the key dirty.
    pub fn write(&mut self, key: u64, value_size: u32) -> Record {
        self.policy.on_write(key);
        self.store.write(key, value_size, self.clock.now())
    }

    /// The §3.1 backchannel outside the listener path: a refetch the
    /// embedder observed elsewhere. Clears suppression and returns the
    /// store's record.
    pub fn refetched(&mut self, key: u64, default_size: u32) -> Record {
        self.tracker.clear(key);
        self.store.read(key, default_size)
    }

    /// Invalidate-vs-update decision for `key` under `cost`, from the
    /// live `E[W]` estimate (`rules::should_update_ew`; unknown keys
    /// default to update).
    pub fn decide(&mut self, key: u64, cost: &CostModel, size: ObjectSize) -> FlushDecision {
        self.policy.decide(key, cost, size)
    }

    /// §3.1 suppression check for an invalidate of `key` (mutates the
    /// tracker: a `true` marks the key invalidated).
    pub fn should_send_invalidate(&mut self, key: u64) -> bool {
        self.tracker.should_send(key)
    }

    /// Clear `key`'s invalidation mark (an update re-freshens it; also
    /// the rollback path for failed flushes).
    pub fn clear_invalidated(&mut self, key: u64) {
        self.tracker.clear(key);
    }

    /// The backing store (read-only view).
    pub fn store(&self) -> &DataStore {
        &self.store
    }

    /// The §3.1 tracker (read-only view).
    pub fn tracker(&self) -> &InvalidationTracker {
        &self.tracker
    }

    /// Fetches served, total.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Fetches served for one key — what the refetch e2e suite asserts
    /// coalescing with: N concurrent readers of a cold key must cost
    /// exactly one origin fetch.
    pub fn fetches_for(&self, key: u64) -> u64 {
        self.fetches_by_key.get(&key).copied().unwrap_or(0)
    }

    /// Read events folded into the estimator, total.
    pub fn reads_recorded(&self) -> u64 {
        self.reads_recorded
    }

    /// `ReadStats` frames absorbed, total.
    pub fn stats_frames(&self) -> u64 {
        self.stats_frames
    }

    /// Cumulative `(update, invalidate)` decision counts.
    pub fn decision_counts(&self) -> (u64, u64) {
        self.policy.decision_counts()
    }

    /// Wrap this state for [`spawn`] or
    /// [`StorePusher::connect_shared`](crate::push::StorePusher::connect_shared)
    /// — the `Arc<Mutex<_>>` constructor, here so embedders and tests
    /// don't need their own `parking_lot` dependency to stand an
    /// origin up.
    pub fn into_shared(self) -> Arc<Mutex<OriginState>> {
        Arc::new(Mutex::new(self))
    }
}

/// How often a blocked origin connection thread re-checks the stop
/// flag. Bounds shutdown latency without a wake channel per thread.
const CONN_POLL: Duration = Duration::from_millis(200);

/// Handle to a running origin listener. Dropping it does **not** stop
/// the listener; call [`OriginHandle::shutdown`].
#[derive(Debug)]
pub struct OriginHandle {
    addr: SocketAddr,
    state: Arc<Mutex<OriginState>>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl OriginHandle {
    /// The bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for embedding a [`crate::push::StorePusher`]
    /// on the same backend or inspecting counters from tests.
    pub fn state(&self) -> Arc<Mutex<OriginState>> {
        Arc::clone(&self.state)
    }

    /// Stop accepting, wake every connection thread, and join them all.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Swap the handles out under the lock, join them after it drops:
        // a connection thread blocked in `read` must never be joined
        // while the registry lock is held.
        let mut conns = Vec::new();
        std::mem::swap(&mut conns, &mut *self.conns.lock());
        for h in conns {
            let _ = h.join();
        }
    }
}

/// Bind `addr` and serve the origin protocol over it: one blocking
/// thread per connection, answering `FetchReq` with `FetchResp` and
/// absorbing `ReadStats`. Traffic here is sparse by design (one fetch
/// per coalesced refusal epoch, a stats frame per thousand reads), so
/// thread-per-connection is the right tool — the poll reactor lives on
/// the cache side.
pub fn spawn<A: ToSocketAddrs>(
    addr: A,
    state: Arc<Mutex<OriginState>>,
) -> io::Result<OriginHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        let conns = Arc::clone(&conns);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let state = Arc::clone(&state);
                let stop = Arc::clone(&stop);
                let h = std::thread::spawn(move || serve_conn(stream, &state, &stop));
                conns.lock().push(h);
            }
        })
    };
    Ok(OriginHandle { addr, state, stop, accept: Some(accept), conns })
}

/// One origin connection: loop on frames until EOF, error, or stop.
fn serve_conn(stream: TcpStream, state: &Mutex<OriginState>, stop: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    // A read timeout turns the blocking recv into a stop-flag poll.
    let _ = stream.set_read_timeout(Some(CONN_POLL));
    let mut io = FramedStream::new(stream);
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match io.recv() {
            Ok(Some(Message::FetchReq { key })) => {
                let rec = state.lock().serve_fetch(key);
                // Pattern bytes are built and sent outside the lock.
                let value = fresca_net::payload::pattern(key, rec.value_size as usize);
                let resp = Message::FetchResp { key, version: rec.version, value };
                if io.send(&resp).is_err() {
                    return;
                }
            }
            Ok(Some(Message::ReadStats { entries })) => {
                state.lock().record_reads(&entries);
            }
            // Anything else is a protocol error: drop the connection.
            Ok(Some(_)) | Ok(None) => return,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fresca_net::payload;

    fn spawn_default() -> OriginHandle {
        let state = Arc::new(Mutex::new(OriginState::with_default_estimator(
            DEFAULT_ORIGIN_VALUE_SIZE,
        )));
        spawn("127.0.0.1:0", state).expect("bind origin")
    }

    #[test]
    fn fetch_clears_tracker_and_counts_per_key() {
        let mut s = OriginState::with_default_estimator(32);
        s.write(7, 16);
        assert!(s.should_send_invalidate(7), "first invalidate goes out");
        assert!(!s.should_send_invalidate(7), "second is suppressed");
        let rec = s.serve_fetch(7);
        assert_eq!(rec.value_size, 16);
        assert!(s.should_send_invalidate(7), "refetch re-armed the key");
        // A never-written key materialises at the default size.
        let cold = s.serve_fetch(99);
        assert_eq!(cold.value_size, 32);
        assert_eq!((s.fetches(), s.fetches_for(7), s.fetches_for(99)), (2, 1, 1));
    }

    #[test]
    fn read_stats_feed_the_estimator_toward_update() {
        let mut s = OriginState::with_default_estimator(32);
        let cost = CostModel::unit(1.0, 0.1, 0.5, 1.0); // threshold E[W] < 2.2
        let size = ObjectSize { key: 8, value: 64 };
        // Write-only key: E[W] grows past the threshold → invalidate.
        for _ in 0..8 {
            s.write(1, 16);
        }
        s.record_reads(&[ReadStat { key: 1, reads: 1 }]);
        assert_eq!(s.decide(1, &cost, size), FlushDecision::Invalidate);
        // Read-dominated key: E[W] ≈ writes/reads « threshold → update.
        s.write(2, 16);
        s.record_reads(&[ReadStat { key: 2, reads: 100 }]);
        assert_eq!(s.decide(2, &cost, size), FlushDecision::Update);
        let (upd, inv) = s.decision_counts();
        assert_eq!((upd, inv), (1, 1));
        assert_eq!(s.reads_recorded(), 101);
    }

    #[test]
    fn listener_serves_fetches_and_absorbs_stats() {
        let handle = spawn_default();
        let mut conn =
            FramedStream::new(TcpStream::connect(handle.addr()).expect("connect"));
        // Seed a record through the shared state, as a pusher would.
        handle.state().lock().write(5, 24);
        conn.send(&Message::FetchReq { key: 5 }).unwrap();
        match conn.recv().unwrap() {
            Some(Message::FetchResp { key, version, value }) => {
                assert_eq!(key, 5);
                assert!(version >= 1);
                assert_eq!(value.len(), 24);
                assert!(payload::verify(key, &value), "origin serves pattern bytes");
            }
            other => panic!("expected FetchResp, got {other:?}"),
        }
        // Stats are fire-and-forget; a follow-up fetch orders us after
        // their processing on this connection.
        conn.send(&Message::ReadStats {
            entries: vec![ReadStat { key: 5, reads: 40 }],
        })
        .unwrap();
        conn.send(&Message::FetchReq { key: 5 }).unwrap();
        assert!(matches!(conn.recv().unwrap(), Some(Message::FetchResp { key: 5, .. })));
        {
            let state = handle.state();
            let s = state.lock();
            assert_eq!(s.fetches_for(5), 2);
            assert_eq!(s.reads_recorded(), 40);
            assert_eq!(s.stats_frames(), 1);
        }
        handle.shutdown();
    }

    #[test]
    fn protocol_violations_drop_the_connection_not_the_listener() {
        let handle = spawn_default();
        let mut bad =
            FramedStream::new(TcpStream::connect(handle.addr()).expect("connect"));
        bad.send(&Message::StatsReq).unwrap(); // not an origin-side frame
        // The origin hangs up; recv sees EOF or reset.
        assert!(matches!(bad.recv(), Ok(None) | Err(_)));
        // The listener itself survives and serves the next connection.
        let mut good =
            FramedStream::new(TcpStream::connect(handle.addr()).expect("connect"));
        good.send(&Message::FetchReq { key: 1 }).unwrap();
        assert!(matches!(good.recv().unwrap(), Some(Message::FetchResp { key: 1, .. })));
        handle.shutdown();
    }
}
