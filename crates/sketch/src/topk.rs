//! The paper's modified Top-K sketch (§3.3): exact `E[W]` counters for the
//! K most-accessed keys, Count-min for the cold tail, with promotion and
//! demotion as keys heat up and cool down.

use crate::countmin::CountMinEw;
use crate::exact::Counters;
use crate::{EwEstimator};
use std::collections::HashMap;

/// Entry for a hot key: the exact three counters plus an access count used
/// for the promotion/demotion ordering.
#[derive(Debug, Clone, Copy, Default)]
struct HotEntry {
    counters: Counters,
    accesses: u64,
}

/// Hybrid Top-K + Count-min `E[W]` estimator.
///
/// Invariants:
/// * at most `k` keys are tracked exactly;
/// * a key is promoted when its (sketch-estimated) access count exceeds
///   the coldest hot key's count; the coldest hot key is demoted and its
///   history continues in the sketch (its exact counters are folded into
///   the sketch so mass is not lost);
/// * queries prefer the exact entry and fall back to the sketch ratio.
#[derive(Debug, Clone)]
pub struct TopKEw {
    k: usize,
    hot: HashMap<u64, HotEntry>,
    tail: CountMinEw,
    /// Cached (key, accesses) of the coldest hot entry; `None` when stale.
    cold_cache: Option<(u64, u64)>,
}

impl TopKEw {
    /// New estimator keeping `k` exact entries, tail sketch `width × depth`
    /// per read/write sketch.
    pub fn new(k: usize, width: usize, depth: usize) -> Self {
        assert!(k >= 1, "top-k needs k >= 1");
        TopKEw { k, hot: HashMap::with_capacity(k + 1), tail: CountMinEw::new(width, depth), cold_cache: None }
    }

    /// Number of keys currently tracked exactly.
    pub fn hot_len(&self) -> usize {
        self.hot.len()
    }

    /// True if `key` is currently tracked exactly.
    pub fn is_hot(&self, key: u64) -> bool {
        self.hot.contains_key(&key)
    }

    fn coldest(&mut self) -> Option<(u64, u64)> {
        if let Some(c) = self.cold_cache {
            return Some(c);
        }
        let c = self
            .hot
            .iter()
            .map(|(&k, e)| (k, e.accesses))
            // Deterministic tie-break on key id: HashMap iteration order
            // must not leak into results.
            .min_by_key(|&(k, a)| (a, k));
        self.cold_cache = c;
        c
    }

    /// Record an access (read or write) and return whether the key is (now)
    /// hot. Handles promotion/demotion.
    fn touch(&mut self, key: u64, is_read: bool) -> bool {
        if let Some(e) = self.hot.get_mut(&key) {
            e.accesses += 1;
            // Only the coldest entry's count matters for the cache; it can
            // only have grown, so invalidate lazily when it is the one
            // touched.
            if let Some((ck, _)) = self.cold_cache {
                if ck == key {
                    self.cold_cache = None;
                }
            }
            return true;
        }
        // Key is cold: record into the tail sketch first.
        if is_read {
            self.tail.record_read(key);
        } else {
            self.tail.record_write(key);
        }
        let est_accesses = self.tail.read_count(key) + self.tail.write_count(key);
        if self.hot.len() < self.k {
            self.hot.insert(key, HotEntry { counters: Counters::default(), accesses: est_accesses });
            self.cold_cache = None;
            return true;
        }
        if let Some((cold_key, cold_accesses)) = self.coldest() {
            if est_accesses > cold_accesses {
                // Promote `key`, demote `cold_key`: fold the demoted key's
                // exact history back into the sketch so its mass survives.
                let demoted = self.hot.remove(&cold_key).expect("coldest key must exist");
                let reads = demoted.counters.c2;
                let writes = demoted.counters.c1 + demoted.counters.c3;
                if reads > 0 {
                    for _ in 0..reads {
                        self.tail.record_read(cold_key);
                    }
                }
                if writes > 0 {
                    for _ in 0..writes {
                        self.tail.record_write(cold_key);
                    }
                }
                self.hot.insert(
                    key,
                    HotEntry { counters: Counters::default(), accesses: est_accesses },
                );
                self.cold_cache = None;
                return true;
            }
        }
        false
    }
}

impl EwEstimator for TopKEw {
    fn record_read(&mut self, key: u64) {
        if self.touch(key, true) {
            let e = self.hot.get_mut(&key).expect("hot after touch");
            // Same conditional-sample semantics as ExactEw (paper §3.3:
            // "upon read after a write").
            if e.counters.c3 > 0 {
                e.counters.c1 += e.counters.c3;
                e.counters.c2 += 1;
                e.counters.c3 = 0;
            }
        }
    }

    fn record_write(&mut self, key: u64) {
        if self.touch(key, false) {
            let e = self.hot.get_mut(&key).expect("hot after touch");
            e.counters.c3 += 1;
        }
    }

    fn estimate(&self, key: u64) -> Option<f64> {
        if let Some(e) = self.hot.get(&key) {
            if e.counters.c2 > 0 {
                return Some(e.counters.c1 as f64 / e.counters.c2 as f64);
            }
            if e.counters.c3 > 0 {
                // Same write-only fallback as ExactEw.
                return Some(e.counters.c3 as f64);
            }
            // Freshly promoted with no completed sample yet: fall back to
            // the sketch's ratio view.
        }
        self.tail.estimate(key)
    }

    fn memory_bytes(&self) -> usize {
        let per_entry = (8 + std::mem::size_of::<HotEntry>()) as f64 * 1.75;
        (self.hot.len() as f64 * per_entry) as usize + self.tail.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "top-k"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_k_slots_first() {
        let mut t = TopKEw::new(3, 64, 2);
        t.record_read(1);
        t.record_read(2);
        t.record_read(3);
        assert_eq!(t.hot_len(), 3);
        assert!(t.is_hot(1) && t.is_hot(2) && t.is_hot(3));
    }

    #[test]
    fn hot_key_estimates_are_exact() {
        let mut t = TopKEw::new(4, 64, 2);
        // Key 9: W W R W R → samples 2, 1 → E[W] = 1.5.
        t.record_write(9);
        t.record_write(9);
        t.record_read(9);
        t.record_write(9);
        t.record_read(9);
        assert!(t.is_hot(9));
        assert_eq!(t.estimate(9), Some(1.5));
    }

    #[test]
    fn promotes_hot_key_over_cold() {
        let mut t = TopKEw::new(2, 1024, 4);
        // Fill with two keys, one access each.
        t.record_read(100);
        t.record_read(200);
        assert_eq!(t.hot_len(), 2);
        // Key 300 becomes much hotter than either.
        for _ in 0..50 {
            t.record_read(300);
        }
        assert!(t.is_hot(300), "hot key must be promoted");
        assert_eq!(t.hot_len(), 2, "k bound must hold");
        assert!(
            !(t.is_hot(100) && t.is_hot(200)),
            "one cold key must have been demoted"
        );
    }

    #[test]
    fn demoted_mass_survives_in_sketch() {
        let mut t = TopKEw::new(1, 1024, 4);
        // Key 1 hot with writes-per-read 2.
        for _ in 0..10 {
            t.record_write(1);
            t.record_write(1);
            t.record_read(1);
        }
        assert_eq!(t.estimate(1), Some(2.0));
        // Key 2 takes over.
        for _ in 0..200 {
            t.record_read(2);
        }
        assert!(t.is_hot(2));
        assert!(!t.is_hot(1));
        // Key 1's ratio view persists: ~20 writes / ~10 reads ≈ 2.
        let est = t.estimate(1).unwrap();
        assert!((est - 2.0).abs() < 0.5, "demoted estimate {est}");
    }

    #[test]
    fn memory_bounded_by_k_plus_sketch() {
        let mut t = TopKEw::new(10, 256, 4);
        for k in 0..10_000u64 {
            t.record_write(k);
            t.record_read(k);
        }
        let sketch_only = CountMinEw::new(256, 4).memory_bytes();
        let upper = sketch_only + 10 * 64 * 2; // generous per-entry bound
        assert!(t.memory_bytes() <= upper, "{} > {upper}", t.memory_bytes());
        assert_eq!(t.hot_len(), 10);
    }

    #[test]
    fn deterministic_under_ties() {
        // Two runs over the same stream must agree exactly even when
        // promotion candidates tie (HashMap order must not leak).
        let stream: Vec<(u64, bool)> =
            (0..500).map(|i| (i % 7, i % 3 == 0)).collect();
        let run = || {
            let mut t = TopKEw::new(3, 64, 2);
            for &(k, r) in &stream {
                if r {
                    t.record_read(k);
                } else {
                    t.record_write(k);
                }
            }
            (0..7).map(|k| t.estimate(k)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
