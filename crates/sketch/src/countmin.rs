//! Count-min sketch and the Count-min-backed `E[W]` estimator.

use crate::{mix64, EwEstimator};

/// A Count-min sketch (Cormode & Muthukrishnan 2005): a `depth × width`
/// array of counters; each key hashes to one column per row; point
/// queries return the minimum over rows. Estimates are biased *upwards*
/// by collisions: `query(k) ≥ true_count(k)`, with error `≤ εN` at
/// probability `1-δ` for `width = ⌈e/ε⌉`, `depth = ⌈ln(1/δ)⌉`.
#[derive(Debug, Clone)]
pub struct CountMin {
    width: usize,
    depth: usize,
    counters: Vec<u64>, // row-major depth × width
    /// Per-row hash seeds, derived deterministically.
    seeds: Vec<u64>,
    /// Conservative update: only bump counters that equal the current
    /// minimum. Cuts over-estimation roughly in half on skewed streams at
    /// the cost of one extra pass over rows.
    conservative: bool,
}

impl CountMin {
    /// New sketch with explicit geometry.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width >= 1 && depth >= 1, "sketch must have positive geometry");
        CountMin {
            width,
            depth,
            counters: vec![0; width * depth],
            seeds: (0..depth as u64).map(|i| mix64(0xC0FFEE ^ i)).collect(),
            conservative: false,
        }
    }

    /// New sketch sized for error `epsilon` (relative to total count) with
    /// failure probability `delta`.
    pub fn with_error(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta in (0,1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil() as usize;
        Self::new(width.max(1), depth.max(1))
    }

    /// Enable conservative update.
    pub fn conservative(mut self) -> Self {
        self.conservative = true;
        self
    }

    /// Sketch width (columns per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sketch depth (number of rows).
    pub fn depth(&self) -> usize {
        self.depth
    }

    #[inline]
    fn index(&self, row: usize, key: u64) -> usize {
        let h = mix64(key ^ self.seeds[row]);
        row * self.width + (h % self.width as u64) as usize
    }

    /// Add `count` occurrences of `key`.
    pub fn add(&mut self, key: u64, count: u64) {
        if self.conservative {
            let current = self.query(key);
            let target = current + count;
            for row in 0..self.depth {
                let i = self.index(row, key);
                if self.counters[i] < target {
                    self.counters[i] = target;
                }
            }
        } else {
            for row in 0..self.depth {
                let i = self.index(row, key);
                self.counters[i] += count;
            }
        }
    }

    /// Point query: an upper bound on the true count of `key`.
    pub fn query(&self, key: u64) -> u64 {
        (0..self.depth).map(|row| self.counters[self.index(row, key)]).min().unwrap_or(0)
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.counters.len() * std::mem::size_of::<u64>()
            + self.seeds.len() * std::mem::size_of::<u64>()
    }
}

/// `E[W]` estimation from two Count-min sketches: per-key read and write
/// counts, `E\[W\] ≈ writes / reads` (paper §3.3: "E\[W\] can be estimated by
/// dividing the number of writes by the number of reads").
///
/// Two systematic differences from the exact tracker, both inherent to
/// the sketch design and part of what Figure 6b measures:
///
/// * collisions bias both counts upward;
/// * the ratio of totals is the *unconditional* mean writes-per-read
///   (`(1−r)/r` for a Bernoulli mix), whereas the exact counters measure
///   the mean conditioned on at least one write (`1/r`) — the sketch
///   cannot see request adjacency, only totals. Near the decision
///   threshold this can flip choices ("Count-min sketch can sometimes
///   make wrong predictions").
#[derive(Debug, Clone)]
pub struct CountMinEw {
    reads: CountMin,
    writes: CountMin,
}

impl CountMinEw {
    /// New estimator with the given per-sketch geometry.
    pub fn new(width: usize, depth: usize) -> Self {
        CountMinEw { reads: CountMin::new(width, depth), writes: CountMin::new(width, depth) }
    }

    /// New estimator sized by error targets (see [`CountMin::with_error`]).
    pub fn with_error(epsilon: f64, delta: f64) -> Self {
        CountMinEw {
            reads: CountMin::with_error(epsilon, delta),
            writes: CountMin::with_error(epsilon, delta),
        }
    }

    /// Estimated read count for a key.
    pub fn read_count(&self, key: u64) -> u64 {
        self.reads.query(key)
    }

    /// Estimated write count for a key.
    pub fn write_count(&self, key: u64) -> u64 {
        self.writes.query(key)
    }
}

impl EwEstimator for CountMinEw {
    fn record_read(&mut self, key: u64) {
        self.reads.add(key, 1);
    }

    fn record_write(&mut self, key: u64) {
        self.writes.add(key, 1);
    }

    fn estimate(&self, key: u64) -> Option<f64> {
        let r = self.reads.query(key);
        let w = self.writes.query(key);
        if r == 0 && w == 0 {
            return None;
        }
        if r == 0 {
            // Writes but (apparently) no reads: E[W] is effectively
            // unbounded; report the write count as a finite proxy so the
            // decision rule lands on "invalidate".
            return Some(w as f64);
        }
        Some(w as f64 / r as f64)
    }

    fn memory_bytes(&self) -> usize {
        self.reads.memory_bytes() + self.writes.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "count-min"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_never_underestimates() {
        let mut cm = CountMin::new(64, 4);
        for k in 0..1000u64 {
            cm.add(k, k % 7 + 1);
        }
        for k in 0..1000u64 {
            assert!(cm.query(k) > k % 7, "underestimate for {k}");
        }
    }

    #[test]
    fn exact_when_no_collisions() {
        let mut cm = CountMin::new(4096, 4);
        for k in 0..10u64 {
            cm.add(k, 5);
        }
        for k in 0..10u64 {
            assert_eq!(cm.query(k), 5);
        }
        assert_eq!(cm.query(999), 0);
    }

    #[test]
    fn conservative_update_tighter_than_plain() {
        let mut plain = CountMin::new(16, 2);
        let mut cons = CountMin::new(16, 2).conservative();
        // Heavy skew: key 0 hot, many cold keys colliding.
        for _ in 0..1000 {
            plain.add(0, 1);
            cons.add(0, 1);
        }
        for k in 1..200u64 {
            plain.add(k, 1);
            cons.add(k, 1);
        }
        let over_plain: u64 = (1..200u64).map(|k| plain.query(k) - 1).sum();
        let over_cons: u64 = (1..200u64).map(|k| cons.query(k) - 1).sum();
        assert!(over_cons <= over_plain, "conservative {over_cons} vs plain {over_plain}");
    }

    #[test]
    fn with_error_sizes_geometry() {
        let cm = CountMin::with_error(0.01, 0.01);
        assert!(cm.width() >= 272); // e/0.01 ≈ 271.8
        assert!(cm.depth() >= 5); // ln(100) ≈ 4.6
    }

    #[test]
    fn ew_ratio_estimation() {
        let mut e = CountMinEw::new(1024, 4);
        // Key 5: 3 writes per read on average.
        for _ in 0..300 {
            e.record_write(5);
        }
        for _ in 0..100 {
            e.record_read(5);
        }
        let est = e.estimate(5).unwrap();
        assert!((est - 3.0).abs() < 0.2, "estimate {est}");
    }

    #[test]
    fn ew_unseen_key_none() {
        let e = CountMinEw::new(64, 2);
        assert!(e.estimate(42).is_none());
    }

    #[test]
    fn ew_write_only_key_reports_large() {
        let mut e = CountMinEw::new(1024, 4);
        for _ in 0..50 {
            e.record_write(7);
        }
        let est = e.estimate(7).unwrap();
        assert!(est >= 50.0, "write-only key must look invalidate-worthy, got {est}");
    }

    #[test]
    fn memory_is_fixed() {
        let mut e = CountMinEw::new(256, 4);
        let m0 = e.memory_bytes();
        for k in 0..100_000u64 {
            e.record_write(k);
        }
        assert_eq!(e.memory_bytes(), m0, "sketch memory must not grow with keys");
    }

    #[test]
    #[should_panic(expected = "positive geometry")]
    fn zero_width_rejected() {
        CountMin::new(0, 2);
    }
}
