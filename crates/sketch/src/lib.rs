//! # fresca-sketch — `E[W]` estimation (paper §3.3)
//!
//! The adaptive policy decides between *update* and *invalidate* per key
//! using `E[W]`, the expected number of writes between consecutive reads
//! of that key: **update iff `E[W]·c_u < c_m + c_i`**. This crate provides
//! the three tracking strategies the paper evaluates in Figure 6:
//!
//! * [`ExactEw`] — the paper's exact three-counter scheme: per key, `C1`
//!   accumulates `E[W]` samples, `C2` counts samples, `C3` counts
//!   consecutive writes since the last read. `E[W] = C1 / C2`. Memory
//!   grows linearly with the number of keys.
//! * [`CountMinEw`] — two Count-min sketches (Cormode & Muthukrishnan)
//!   approximate per-key read and write counts; `E[W] ≈ writes/reads`.
//!   Sub-linear memory, but hash collisions inflate counts and can flip
//!   decisions.
//! * [`TopKEw`] — the paper's proposed hybrid: exact tracking for the
//!   Top-K hottest keys (with promotion/demotion) and Count-min for the
//!   cold tail. Hot keys — the ones that dominate cost — get exact
//!   decisions while memory stays bounded.
//!
//! All estimators implement [`EwEstimator`], are fed the full request
//! stream (the paper's Figure 4 places the policy at the load balancer /
//! proxy, which observes both reads and writes), and report their exact
//! heap footprint for the Figure 6c storage comparison.

#![forbid(unsafe_code)]

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod countmin;
pub mod eval;
pub mod exact;
pub mod topk;

pub use countmin::{CountMin, CountMinEw};
pub use eval::{AccuracyReport, DecisionEvaluator};
pub use exact::ExactEw;
pub use topk::TopKEw;

/// An online estimator of `E[W]` (expected writes between reads) per key.
///
/// Estimators observe the request stream via [`EwEstimator::record_read`] /
/// [`EwEstimator::record_write`] and answer point queries by shared
/// reference.
pub trait EwEstimator {
    /// Observe a read of `key`.
    fn record_read(&mut self, key: u64);

    /// Observe a write of `key`.
    fn record_write(&mut self, key: u64);

    /// Estimate `E[W]` for `key`. `None` means "no basis for an estimate
    /// yet" (callers fall back to a configurable default decision).
    fn estimate(&self, key: u64) -> Option<f64>;

    /// Approximate heap footprint in bytes (for Figure 6c).
    fn memory_bytes(&self) -> usize;

    /// Short name used in reports ("exact", "count-min", "top-k").
    fn name(&self) -> &'static str;
}

impl<T: EwEstimator + ?Sized> EwEstimator for Box<T> {
    fn record_read(&mut self, key: u64) {
        (**self).record_read(key)
    }
    fn record_write(&mut self, key: u64) {
        (**self).record_write(key)
    }
    fn estimate(&self, key: u64) -> Option<f64> {
        (**self).estimate(key)
    }
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// SplitMix64-style mixing used for sketch hashing: cheap, well
/// distributed, and stable forever (same rationale as the kernel RNG).
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}
