//! Exact per-key `E[W]` tracking (the paper's three-counter scheme).

use crate::EwEstimator;
use std::collections::HashMap;

/// Per-key counters, named after the paper:
///
/// * `c1` — sum of completed `E[W]` samples,
/// * `c2` — number of completed samples,
/// * `c3` — consecutive writes since the last read (the in-flight sample).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Sum of `E[W]` samples.
    pub c1: u64,
    /// Number of samples.
    pub c2: u64,
    /// Writes since last read.
    pub c3: u64,
}

/// Exact `E[W]` tracker. Memory is Θ(distinct keys): three `u64` counters
/// plus hash-map overhead per key — the baseline Figure 6c measures the
/// sketches' savings against.
#[derive(Debug, Clone, Default)]
pub struct ExactEw {
    keys: HashMap<u64, Counters>,
}

impl ExactEw {
    /// New empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys tracked.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no key has been observed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Raw counters for a key (test/debug access).
    pub fn counters(&self, key: u64) -> Option<Counters> {
        self.keys.get(&key).copied()
    }
}

impl EwEstimator for ExactEw {
    fn record_read(&mut self, key: u64) {
        let c = self.keys.entry(key).or_default();
        // Paper §3.3: "Upon read after a write, we add C3 to C1 and
        // increment C2 by 1" — a read directly after another read closes
        // no sample, so E[W] is the mean write-run length *conditioned on
        // at least one write*. For a Bernoulli mix that is 1/r, which
        // makes the E[W] rule coincide exactly with the §3.2 exact rule.
        if c.c3 > 0 {
            c.c1 += c.c3;
            c.c2 += 1;
            c.c3 = 0;
        }
    }

    fn record_write(&mut self, key: u64) {
        self.keys.entry(key).or_default().c3 += 1;
    }

    fn estimate(&self, key: u64) -> Option<f64> {
        let c = self.keys.get(&key)?;
        if c.c2 > 0 {
            Some(c.c1 as f64 / c.c2 as f64)
        } else if c.c3 > 0 {
            // Never read, only written: no completed sample exists, but the
            // write-run length is a lower bound on E[W] and the only
            // evidence available — report it so write-only keys look
            // invalidate-worthy instead of unknown.
            Some(c.c3 as f64)
        } else {
            None
        }
    }

    fn memory_bytes(&self) -> usize {
        // Key (8) + three counters (24) per entry, plus a conservative
        // 1.75x hash-map overhead factor (load factor + control bytes).
        let per_entry = (8 + std::mem::size_of::<Counters>()) as f64 * 1.75;
        (self.keys.len() as f64 * per_entry) as usize
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counter_semantics() {
        // W W R  → first read closes a sample of 2.
        let mut e = ExactEw::new();
        e.record_write(1);
        e.record_write(1);
        e.record_read(1);
        assert_eq!(e.counters(1), Some(Counters { c1: 2, c2: 1, c3: 0 }));
        assert_eq!(e.estimate(1), Some(2.0));
        // W R → sample of 1; E[W] = (2+1)/2.
        e.record_write(1);
        e.record_read(1);
        assert_eq!(e.estimate(1), Some(1.5));
        // A read directly after a read closes no sample (paper: "upon
        // read after a write") — the estimate is unchanged.
        e.record_read(1);
        assert_eq!(e.estimate(1), Some(1.5));
    }

    #[test]
    fn write_only_key_reports_run_length() {
        let mut e = ExactEw::new();
        e.record_write(9);
        e.record_write(9);
        // No read yet → no completed sample → fall back to the write-run
        // length so the key looks invalidate-worthy.
        assert_eq!(e.estimate(9), Some(2.0));
    }

    #[test]
    fn unknown_key_has_no_estimate() {
        let e = ExactEw::new();
        assert_eq!(e.estimate(123), None);
    }

    #[test]
    fn keys_are_independent() {
        let mut e = ExactEw::new();
        e.record_write(1);
        e.record_read(1);
        e.record_read(2);
        assert_eq!(e.estimate(1), Some(1.0));
        // Key 2 was only ever read: no write-run has completed, so there
        // is no basis for an estimate.
        assert_eq!(e.estimate(2), None);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn memory_grows_linearly() {
        let mut e = ExactEw::new();
        for k in 0..1000 {
            e.record_read(k);
        }
        let m1000 = e.memory_bytes();
        for k in 1000..2000 {
            e.record_read(k);
        }
        let m2000 = e.memory_bytes();
        assert!(m2000 > m1000, "memory must grow with keys");
        assert!((m2000 as f64 / m1000 as f64 - 2.0).abs() < 0.01);
    }
}
