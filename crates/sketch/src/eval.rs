//! Decision-accuracy evaluation (Figure 6b).
//!
//! The paper's observation: a sketch "does not need to determine the
//! precise value of `E[W]`; it only needs to decide whether
//! `E[W]·c_u < c_i + c_m`". So accuracy is measured on the *decision*, not
//! the estimate: at every write, compare the estimator's
//! update-vs-invalidate choice against the choice an exact tracker would
//! make. The threshold `(c_i + c_m) / c_u` is the single scalar the rule
//! needs, which keeps this crate independent of the cost model's types.

use crate::{EwEstimator, ExactEw};
use serde::{Deserialize, Serialize};

/// Outcome of an accuracy run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Decision points evaluated (one per write with an available
    /// reference estimate).
    pub decisions: u64,
    /// Decisions where the estimator agreed with the exact tracker.
    pub agreements: u64,
    /// Estimator memory at the end of the run.
    pub estimator_bytes: usize,
    /// Exact-tracker memory at the end of the run (the Figure 6c
    /// baseline).
    pub exact_bytes: usize,
}

impl AccuracyReport {
    /// Agreement rate in `[0, 1]`; 1.0 when there were no decisions.
    pub fn accuracy(&self) -> f64 {
        if self.decisions == 0 {
            1.0
        } else {
            self.agreements as f64 / self.decisions as f64
        }
    }

    /// Storage saving factor vs exact tracking (Figure 6c's y-axis).
    pub fn storage_saving(&self) -> f64 {
        if self.estimator_bytes == 0 {
            f64::INFINITY
        } else {
            self.exact_bytes as f64 / self.estimator_bytes as f64
        }
    }
}

/// Replays a request stream through an estimator and an exact reference
/// in lock-step, scoring update/invalidate decisions at every write.
pub struct DecisionEvaluator<E: EwEstimator> {
    estimator: E,
    reference: ExactEw,
    /// `(c_i + c_m) / c_u`: update iff `E[W] < threshold`.
    threshold: f64,
    decisions: u64,
    agreements: u64,
}

impl<E: EwEstimator> DecisionEvaluator<E> {
    /// New evaluator; `threshold = (c_i + c_m) / c_u`.
    pub fn new(estimator: E, threshold: f64) -> Self {
        assert!(threshold.is_finite() && threshold > 0.0, "threshold must be positive");
        DecisionEvaluator {
            estimator,
            reference: ExactEw::new(),
            threshold,
            decisions: 0,
            agreements: 0,
        }
    }

    fn decide(est: Option<f64>, threshold: f64) -> bool {
        // `true` = update. Unknown keys default to update (cheap until
        // proven write-dominated) — both sides use the same default so the
        // comparison scores estimation, not defaults.
        match est {
            Some(ew) => ew < threshold,
            None => true,
        }
    }

    /// Feed a read.
    pub fn read(&mut self, key: u64) {
        self.estimator.record_read(key);
        self.reference.record_read(key);
    }

    /// Feed a write; this is a decision point.
    pub fn write(&mut self, key: u64) {
        // Decide *before* recording, as the policy would on write arrival.
        let est_choice = Self::decide(self.estimator.estimate(key), self.threshold);
        let ref_choice = Self::decide(self.reference.estimate(key), self.threshold);
        self.decisions += 1;
        self.agreements += (est_choice == ref_choice) as u64;
        self.estimator.record_write(key);
        self.reference.record_write(key);
    }

    /// Finish and report.
    pub fn report(self) -> AccuracyReport {
        AccuracyReport {
            decisions: self.decisions,
            agreements: self.agreements,
            estimator_bytes: self.estimator.memory_bytes(),
            exact_bytes: self.reference.memory_bytes(),
        }
    }

    /// Access the inner estimator (for timing harnesses).
    pub fn estimator(&self) -> &E {
        &self.estimator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountMinEw, TopKEw};

    #[test]
    fn exact_vs_exact_is_perfect() {
        let mut ev = DecisionEvaluator::new(ExactEw::new(), 4.0);
        for i in 0..1000u64 {
            let k = i % 13;
            if i % 3 == 0 {
                ev.write(k);
            } else {
                ev.read(k);
            }
        }
        let r = ev.report();
        assert_eq!(r.accuracy(), 1.0);
        assert!(r.decisions > 0);
        assert!((r.storage_saving() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn generous_sketch_is_accurate() {
        // Bernoulli op mix (no artificial write runs): keys 0..25 at 60%
        // writes (exact conditional E[W] = 2.5, CM unconditional ≈ 1.5),
        // keys 25..50 at 5% writes (E[W] ≈ 1.05, CM ≈ 0.05). With the
        // threshold at 4.0 every estimate lands on the same side, so a
        // generously-sized sketch must agree with exact tracking.
        use rand::Rng;
        let mut rng = fresca_sim_test_rng();
        let mut ev = DecisionEvaluator::new(CountMinEw::new(4096, 4), 4.0);
        for i in 0..20_000u64 {
            let k = i % 50;
            let write_prob = if k < 25 { 0.6 } else { 0.05 };
            if rng.gen::<f64>() < write_prob {
                ev.write(k);
            } else {
                ev.read(k);
            }
        }
        let r = ev.report();
        assert!(r.accuracy() > 0.9, "accuracy {}", r.accuracy());
    }

    /// Deterministic RNG for tests (mirrors fresca-sim's xoshiro without
    /// taking a dependency).
    fn fresca_sim_test_rng() -> impl rand::Rng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn tiny_sketch_saves_storage_but_errs() {
        let mut cm = DecisionEvaluator::new(CountMinEw::new(8, 1), 1.0);
        // Many keys with opposite behaviours force collisions.
        for i in 0..20_000u64 {
            let k = i % 500;
            if k % 2 == 0 {
                cm.read(k);
            } else {
                cm.write(k);
            }
        }
        let r = cm.report();
        assert!(r.storage_saving() > 10.0, "saving {}", r.storage_saving());
        assert!(r.accuracy() < 1.0, "a tiny sketch should make some mistakes");
    }

    #[test]
    fn topk_beats_countmin_on_skewed_stream() {
        // The regime where the paper's Top-K sketch wins: hot keys whose
        // true E[W] (2.5) sits below the decision threshold (3.0) by a
        // modest margin, plus a large write-only cold tail whose collisions
        // inflate a small Count-min's write counters enough to flip the
        // hot keys' decisions. Exact tracking of hot keys is immune.
        const HOT: u64 = 6;
        // Hot cycle: W W W R W W R → E[W] samples 3, 2 → mean 2.5.
        const CYCLE: [bool; 7] = [false, false, false, true, false, false, true];
        let mut hot_pos = [0usize; HOT as usize];
        let stream: Vec<(u64, bool)> = (0..60_000u64)
            .map(|i| {
                if i % 3 == 0 {
                    let k = (i / 3) % HOT;
                    let pos = &mut hot_pos[k as usize];
                    let read = CYCLE[*pos % CYCLE.len()];
                    *pos += 1;
                    (k, read)
                } else {
                    // Write-only cold tail: 3000 keys.
                    (100 + (i / 3) % 3000, false)
                }
            })
            .collect();
        let run = |mut ev: DecisionEvaluator<Box<dyn EwEstimator>>| {
            for &(k, r) in &stream {
                if r {
                    ev.read(k)
                } else {
                    ev.write(k)
                }
            }
            ev.report()
        };
        let cm = run(DecisionEvaluator::new(
            Box::new(CountMinEw::new(32, 2)) as Box<dyn EwEstimator>,
            3.0,
        ));
        let topk = run(DecisionEvaluator::new(
            Box::new(TopKEw::new(16, 32, 2)) as Box<dyn EwEstimator>,
            3.0,
        ));
        assert!(
            topk.accuracy() > cm.accuracy() + 0.05,
            "top-k {} should clearly beat count-min {} here",
            topk.accuracy(),
            cm.accuracy()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_threshold() {
        DecisionEvaluator::new(ExactEw::new(), 0.0);
    }
}
