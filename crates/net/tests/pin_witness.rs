//! Witness test for the receive-buffer pinning heuristic: a small value
//! decoded zero-copy out of a large codec read chunk is re-materialized
//! by [`fresca_net::pin::repin_small`] before caching, while a large
//! value keeps its zero-copy view of the chunk.

use bytes::{Bytes, BytesMut};
use fresca_net::msg::{Message, RequestId};
use fresca_net::payload;
use fresca_net::pin::{repin_small, DEFAULT_PIN_THRESHOLD};
use fresca_net::FrameCodec;

/// Feed `frames` to a decoder as one simulated `read()` chunk and
/// return the decoded messages (all sharing one accumulation buffer,
/// exactly like the reactor's scratch-buffer feed).
fn decode_chunk(frames: &[u8]) -> Vec<Message> {
    let mut codec = FrameCodec::new();
    codec.feed(frames);
    let mut out = Vec::new();
    while let Some(msg) = codec.next().expect("well-formed frames") {
        out.push(msg);
    }
    out
}

fn put_value(msg: &Message) -> Bytes {
    match msg {
        Message::PutReq { value, .. } => value.clone(),
        other => panic!("expected PutReq, got {other:?}"),
    }
}

#[test]
fn small_cached_value_is_repinned_large_keeps_zero_copy() {
    // One receive chunk carrying a 100 B put and a 16 KiB put — the
    // shape a pipelining client produces and one read() delivers.
    let small_payload = payload::pattern(1, 100);
    let large_payload = payload::pattern(2, 16 * 1024);
    let mut wire = BytesMut::new();
    FrameCodec::encode(
        &Message::PutReq { id: RequestId(1), key: 1, value: small_payload, ttl: 0 },
        &mut wire,
    );
    FrameCodec::encode(
        &Message::PutReq { id: RequestId(2), key: 2, value: large_payload, ttl: 0 },
        &mut wire,
    );
    let msgs = decode_chunk(&wire);
    assert_eq!(msgs.len(), 2);
    let small = put_value(&msgs[0]);
    let large = put_value(&msgs[1]);

    // Zero-copy decode: both values are views of the same receive
    // chunk, so the 100 B value currently pins the whole ~16 KiB
    // allocation.
    assert!(
        small.shares_allocation_with(&large),
        "decoded values must share the receive chunk (zero-copy decode)"
    );
    assert!(
        small.allocation_size() >= 16 * 1024,
        "the small view pins the whole chunk: {} bytes",
        small.allocation_size()
    );

    // The cache-install hand-off: the small value is copied into an
    // exact allocation; the large one keeps its view.
    let small_cached = repin_small(small.clone(), DEFAULT_PIN_THRESHOLD);
    let large_cached = repin_small(large.clone(), DEFAULT_PIN_THRESHOLD);
    assert_eq!(small_cached, small, "bytes are unchanged by the copy");
    assert!(
        !small_cached.shares_allocation_with(&large),
        "small cached value must no longer share the codec chunk"
    );
    assert_eq!(small_cached.allocation_size(), 100, "re-pinned allocation is exact");
    assert!(
        large_cached.shares_allocation_with(&large),
        "large cached value still shares the codec chunk (no copy)"
    );
    assert!(payload::verify(1, &small_cached), "re-pinned bytes still verify");
}

#[test]
fn small_value_from_small_read_is_not_copied() {
    // The same 100 B put arriving alone in a tiny read: amplification
    // is under 8x, so the heuristic leaves the zero-copy view alone.
    let mut wire = BytesMut::new();
    FrameCodec::encode(
        &Message::PutReq { id: RequestId(1), key: 1, value: payload::pattern(1, 100), ttl: 0 },
        &mut wire,
    );
    let msgs = decode_chunk(&wire);
    let value = put_value(&msgs[0]);
    let cached = repin_small(value.clone(), DEFAULT_PIN_THRESHOLD);
    assert!(
        cached.shares_allocation_with(&value),
        "no amplification, no copy: allocation is {} bytes for a {} byte value",
        value.allocation_size(),
        value.len()
    );
}
