//! Deterministic simulated network with fault injection.
//!
//! The network is *passive*: [`SimNetwork::send`] returns the deliveries
//! (delay-shifted, possibly duplicated, possibly none if dropped) and the
//! caller schedules them on its own event queue. That keeps one source of
//! time and one source of ordering — the engine's scheduler — so runs stay
//! reproducible.
//!
//! Fault injection follows the smoltcp example-suite conventions: a drop
//! chance, a duplicate chance, and delay jitter that naturally re-orders
//! messages (a message with a long jitter draw arrives after a later
//! message with a short one).

use crate::msg::Message;
use fresca_sim::{SimDuration, SimTime, Xoshiro256PlusPlus};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Fault and delay model for one direction of a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Base one-way propagation delay.
    pub base_delay: SimDuration,
    /// Uniform jitter added on top of the base delay (0 ⇒ FIFO link;
    /// > 0 ⇒ messages can re-order).
    pub jitter: SimDuration,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a message is delivered twice (second copy gets an
    /// independent delay draw).
    pub duplicate_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        // The paper's Figure 6a cites ~350µs of network delay; use it as
        // the round-number default one-way latency.
        FaultConfig {
            base_delay: SimDuration::from_micros(350),
            jitter: SimDuration::ZERO,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
        }
    }
}

impl FaultConfig {
    /// A perfectly reliable, zero-jitter link with the given delay.
    pub fn reliable(delay: SimDuration) -> Self {
        FaultConfig { base_delay: delay, ..Default::default() }
    }

    fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.drop_prob), "drop_prob in [0,1]");
        assert!((0.0..=1.0).contains(&self.duplicate_prob), "duplicate_prob in [0,1]");
    }
}

/// Delivery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages offered to the network.
    pub sent: u64,
    /// Messages dropped by fault injection.
    pub dropped: u64,
    /// Extra copies created by duplication.
    pub duplicated: u64,
    /// Deliveries produced (originals + duplicates − drops).
    pub delivered: u64,
    /// Total wire bytes of produced deliveries.
    pub bytes: u64,
}

/// A message due for delivery at `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Delivery time.
    pub at: SimTime,
    /// The message.
    pub msg: Message,
}

/// Deterministic fault-injecting link.
#[derive(Debug)]
pub struct SimNetwork {
    config: FaultConfig,
    rng: Xoshiro256PlusPlus,
    stats: NetStats,
}

impl SimNetwork {
    /// New link with the given fault model and RNG seed.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        config.validate();
        SimNetwork { config, rng: Xoshiro256PlusPlus::new(seed), stats: NetStats::default() }
    }

    /// The fault model in use.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    fn delay(&mut self) -> SimDuration {
        let jitter_ns = if self.config.jitter.is_zero() {
            0
        } else {
            self.rng.gen_range(0..=self.config.jitter.as_nanos())
        };
        self.config.base_delay + SimDuration::from_nanos(jitter_ns)
    }

    /// Offer `msg` to the link at time `now`; returns 0, 1 or 2 scheduled
    /// deliveries depending on the fault draws.
    pub fn send(&mut self, now: SimTime, msg: Message) -> Vec<Delivery> {
        self.stats.sent += 1;
        let mut out = Vec::with_capacity(1);
        if self.rng.gen::<f64>() < self.config.drop_prob {
            self.stats.dropped += 1;
            return out;
        }
        let first = self.delay();
        out.push(Delivery { at: now + first, msg: msg.clone() });
        if self.rng.gen::<f64>() < self.config.duplicate_prob {
            self.stats.duplicated += 1;
            let second = self.delay();
            out.push(Delivery { at: now + second, msg });
        }
        for d in &out {
            self.stats.delivered += 1;
            self.stats.bytes += d.msg.wire_size() as u64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(key: u64) -> Message {
        Message::ReadReq { key }
    }

    #[test]
    fn reliable_link_delivers_everything_in_order() {
        let mut net =
            SimNetwork::new(FaultConfig::reliable(SimDuration::from_micros(350)), 1);
        let mut deliveries = Vec::new();
        for i in 0..100 {
            let now = SimTime::from_millis(i);
            deliveries.extend(net.send(now, msg(i)));
        }
        assert_eq!(deliveries.len(), 100);
        assert!(deliveries.windows(2).all(|w| w[0].at <= w[1].at), "FIFO without jitter");
        assert_eq!(net.stats().dropped, 0);
        assert_eq!(deliveries[0].at, SimTime::from_micros(350));
    }

    #[test]
    fn drop_rate_converges() {
        let mut net = SimNetwork::new(
            FaultConfig { drop_prob: 0.3, ..FaultConfig::default() },
            7,
        );
        for i in 0..20_000 {
            net.send(SimTime::from_millis(i), msg(i));
        }
        let s = net.stats();
        let rate = s.dropped as f64 / s.sent as f64;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {rate}");
        assert_eq!(s.delivered + s.dropped, s.sent);
    }

    #[test]
    fn duplicates_produce_two_deliveries() {
        let mut net = SimNetwork::new(
            FaultConfig { duplicate_prob: 1.0, ..FaultConfig::default() },
            3,
        );
        let out = net.send(SimTime::ZERO, msg(5));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].msg, out[1].msg);
        assert_eq!(net.stats().duplicated, 1);
        assert_eq!(net.stats().delivered, 2);
    }

    #[test]
    fn jitter_can_reorder() {
        let mut net = SimNetwork::new(
            FaultConfig {
                base_delay: SimDuration::from_micros(100),
                jitter: SimDuration::from_millis(10),
                ..FaultConfig::default()
            },
            11,
        );
        // Send a burst within 1ms; with 10ms jitter, arrival order almost
        // surely differs from send order.
        let mut deliveries = Vec::new();
        for i in 0..50 {
            deliveries.extend(net.send(SimTime::from_micros(i * 20), msg(i)));
        }
        let sorted = deliveries.windows(2).all(|w| w[0].at <= w[1].at);
        assert!(!sorted, "expected at least one reordering under heavy jitter");
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let mut net = SimNetwork::new(
                FaultConfig {
                    drop_prob: 0.2,
                    duplicate_prob: 0.1,
                    jitter: SimDuration::from_micros(500),
                    ..FaultConfig::default()
                },
                seed,
            );
            (0..1000).flat_map(|i| net.send(SimTime::from_millis(i), msg(i))).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn byte_accounting_uses_wire_size() {
        let mut net = SimNetwork::new(FaultConfig::default(), 1);
        let m = Message::ReadResp { key: 1, version: 1, value_size: 100 };
        let expect = m.wire_size() as u64;
        net.send(SimTime::ZERO, m);
        assert_eq!(net.stats().bytes, expect);
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn rejects_invalid_probability() {
        SimNetwork::new(FaultConfig { drop_prob: 1.5, ..FaultConfig::default() }, 1);
    }
}
