//! Receive-buffer pinning heuristic.
//!
//! The zero-copy decode path slices value payloads straight out of the
//! codec's receive chunk: a decoded [`Bytes`] is a refcounted view of
//! the (up to 64 KiB) buffer one `read()` filled. That is the right
//! call for the transient case — the value is written to the cache or
//! echoed back and the chunk's refcount drops. But a *cached* value
//! lives as long as the entry does, and a long-lived 100 B value
//! holding a 64 KiB chunk alive pins ~650× its own weight in memory
//! (the classic slab-of-arena amplification problem).
//!
//! [`repin_small`] is the hand-off policy the server applies at every
//! cache-install point: values smaller than a threshold (default
//! [`DEFAULT_PIN_THRESHOLD`]) whose backing allocation is at least
//! [`PIN_AMPLIFICATION`]× their length are copied into a fresh exact
//! allocation first. Large values — and small values decoded from
//! small chunks — keep the zero-copy view: the copy only happens when
//! the amplification is real.

use bytes::Bytes;

/// Default `--pin-threshold`: values below this length are candidates
/// for re-materialization out of a large receive chunk.
pub const DEFAULT_PIN_THRESHOLD: usize = 512;

/// Amplification factor that triggers the copy: a value is re-pinned
/// only when its backing allocation is at least this many times its own
/// length (so a 100 B slice of a 128 B buffer is left alone, while a
/// 100 B slice of a 64 KiB read chunk is copied out).
pub const PIN_AMPLIFICATION: usize = 8;

/// Apply the pinning heuristic to a value about to be cached: returns a
/// freshly-allocated copy when `value` is short (`len < threshold`,
/// non-empty) and pins an allocation ≥ [`PIN_AMPLIFICATION`]× its
/// length; otherwise returns `value` unchanged (still sharing its
/// backing buffer).
///
/// ```
/// use bytes::Bytes;
/// use fresca_net::pin::repin_small;
///
/// let chunk = Bytes::from(vec![7u8; 4096]);
/// let small = chunk.slice(..100);
/// let repinned = repin_small(small.clone(), 512);
/// assert_eq!(repinned, small);
/// assert!(!repinned.shares_allocation_with(&chunk), "copied out of the big chunk");
///
/// let large = chunk.slice(..2048);
/// assert!(repin_small(large.clone(), 512).shares_allocation_with(&chunk), "large values keep the view");
/// ```
pub fn repin_small(value: Bytes, threshold: usize) -> Bytes {
    if !value.is_empty()
        && value.len() < threshold
        && value.allocation_size() >= PIN_AMPLIFICATION * value.len()
    {
        return Bytes::from(value.to_vec());
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_slice_of_large_chunk_is_repinned() {
        let chunk = Bytes::from(vec![1u8; 65536]);
        let v = chunk.slice(100..200);
        let out = repin_small(v.clone(), DEFAULT_PIN_THRESHOLD);
        assert_eq!(out, v, "bytes unchanged");
        assert!(!out.shares_allocation_with(&chunk));
        assert_eq!(out.allocation_size(), 100, "fresh allocation is exact");
    }

    #[test]
    fn large_value_keeps_the_zero_copy_view() {
        let chunk = Bytes::from(vec![2u8; 65536]);
        let v = chunk.slice(..4096);
        assert!(repin_small(v, DEFAULT_PIN_THRESHOLD).shares_allocation_with(&chunk));
    }

    #[test]
    fn small_slice_of_small_chunk_is_left_alone() {
        // 100 B out of 256 B: under threshold but amplification < 8×.
        let chunk = Bytes::from(vec![3u8; 256]);
        let v = chunk.slice(..100);
        assert!(repin_small(v, DEFAULT_PIN_THRESHOLD).shares_allocation_with(&chunk));
    }

    #[test]
    fn boundary_cases() {
        let chunk = Bytes::from(vec![4u8; 4096]);
        // len == threshold: not "below", keep the view.
        assert!(repin_small(chunk.slice(..512), 512).shares_allocation_with(&chunk));
        // exactly 8× amplification triggers.
        assert!(!repin_small(chunk.slice(..4096 / 8), 4096).shares_allocation_with(&chunk));
        // empty values never copy (nothing to pin).
        assert!(repin_small(chunk.slice(..0), 512).shares_allocation_with(&chunk));
        // threshold 0 disables the heuristic outright.
        assert!(repin_small(chunk.slice(..10), 0).shares_allocation_with(&chunk));
    }
}
