//! Protocol messages between the application, cache and data store.
//!
//! Serving-path messages ([`Message::GetResp`], [`Message::PutReq`]) and
//! store-pushed [`UpdateItem`]s carry **real value bytes** as refcounted
//! [`Bytes`] handles: the codec slices them out of its receive buffer
//! without copying, and handing a payload to the cache or a response is
//! a refcount bump. Simulation-path messages (`ReadResp`/`WriteReq`)
//! still describe values by size alone — the simulator never inspects
//! bytes, but sizes stay exact because the cost model scales
//! `c_u`/`c_i`/`c_m` by message size when the network is the bottleneck
//! (§3.3).

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Identifies one in-flight request on a connection, so responses can be
/// matched to requests when several are pipelined on the same stream.
///
/// Ids are allocated by the client (any scheme that never repeats while a
/// request is outstanding works; a per-connection counter is typical) and
/// echoed verbatim by the server. The value `0` is reserved as
/// [`RequestId::NONE`]: it is what decoding a legacy, id-less frame (wire
/// tags 8–11) yields, so id-aware peers can interoperate with old ones.
///
/// ```
/// use fresca_net::RequestId;
///
/// let first = RequestId(1);
/// assert!(first > RequestId::NONE);
/// assert!(RequestId::NONE.is_none());
/// assert_eq!(format!("{first}"), "req#1");
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct RequestId(pub u64);

impl RequestId {
    /// The reserved "no id" value carried by legacy (tag 8–11) frames.
    pub const NONE: RequestId = RequestId(0);

    /// True for [`RequestId::NONE`].
    pub fn is_none(self) -> bool {
        self == RequestId::NONE
    }

    /// Bytes this id occupies on the wire: 0 for [`RequestId::NONE`]
    /// (encoded as a legacy id-less tag), 8 otherwise.
    pub fn wire_size(self) -> usize {
        if self.is_none() {
            0
        } else {
            8
        }
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// One item of a batched update message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateItem {
    /// Key being refreshed.
    pub key: u64,
    /// Backend version after the write burst.
    pub version: u64,
    /// The refreshed value, carried verbatim on the wire.
    pub value: Bytes,
}

impl UpdateItem {
    /// Value size in bytes, as accounted on the wire.
    pub fn value_size(&self) -> u32 {
        self.value.len() as u32
    }
}

/// One entry of a [`Message::ReadStats`] backchannel frame: how many
/// bounded reads a cache node absorbed for `key` since the last report.
///
/// Counts are deltas, not totals — the origin accumulates them into its
/// `E[W]` estimator (`fresca-sketch`), so a report lost to a dropped
/// connection degrades the estimate instead of corrupting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadStat {
    /// Key that was read.
    pub key: u64,
    /// Reads absorbed since the previous report (saturating).
    pub reads: u32,
}

/// How a staleness-bounded read ([`Message::GetReq`]) was resolved by the
/// serving cache. Carried on the wire as one byte in
/// [`Message::GetResp`].
///
/// The four outcomes partition the paper's freshness semantics at the
/// serving boundary: an entry can satisfy both the server's TTL contract
/// and the client's bound (`Fresh`), only the client's bound
/// (`ServedStale`), neither (`RefusedStale`), or be absent (`Miss`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GetStatus {
    /// Entry served; within its TTL and within the request's bound.
    Fresh,
    /// Entry served *stale*: past its TTL (the server's default freshness
    /// contract) but still within the staleness bound this request
    /// explicitly accepted.
    ServedStale,
    /// Entry present but refused: older than the request's bound, or
    /// known-stale via a backend invalidation. The client must fetch from
    /// the backing store.
    RefusedStale,
    /// No entry for the key. A normal cold miss, not a freshness event.
    Miss,
}

impl GetStatus {
    /// Wire encoding (one byte).
    pub fn as_u8(self) -> u8 {
        match self {
            GetStatus::Fresh => 0,
            GetStatus::ServedStale => 1,
            GetStatus::RefusedStale => 2,
            GetStatus::Miss => 3,
        }
    }

    /// Decode from the wire byte; `None` for unknown values.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(GetStatus::Fresh),
            1 => Some(GetStatus::ServedStale),
            2 => Some(GetStatus::RefusedStale),
            3 => Some(GetStatus::Miss),
            _ => None,
        }
    }

    /// True when the response carried a value (`Fresh` or `ServedStale`).
    pub fn is_served(self) -> bool {
        matches!(self, GetStatus::Fresh | GetStatus::ServedStale)
    }
}

/// Protocol messages.
///
/// Two families share the frame format:
///
/// * **Simulation-path** messages (`ReadReq` … `Ack`) connect the cache
///   and the data store inside the engines: backend fetches, batched
///   invalidate/update pushes and their acks.
/// * **Serving-path** messages (`GetReq` … `PutResp`) cross the real
///   client ⇄ cache-server boundary and carry the paper's freshness
///   semantics on the wire: a per-request max-staleness bound on reads, a
///   per-key TTL on writes, and a served/refused-stale status on
///   responses.
///
/// Serving-path messages carry a [`RequestId`] so several requests can be
/// pipelined on one connection and responses matched by id; the server
/// echoes the request's id on the response.
///
/// ```
/// use fresca_net::{Message, RequestId};
///
/// // A read that tolerates at most 50ms of staleness...
/// let req = Message::GetReq { id: RequestId(1), key: 7, max_staleness: 50_000_000 };
/// // ...occupies exactly its declared number of wire bytes.
/// assert_eq!(req.wire_size(), 5 + 8 + 8 + 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// Cache → store: fetch a key (miss path or poll).
    ReadReq {
        /// Key to fetch.
        key: u64,
    },
    /// Store → cache: value response.
    ReadResp {
        /// Key fetched.
        key: u64,
        /// Version served.
        version: u64,
        /// Size of the value carried.
        value_size: u32,
    },
    /// App → store: write a key (bypasses the cache).
    WriteReq {
        /// Key written.
        key: u64,
        /// New value size (value carried on the wire).
        value_size: u32,
    },
    /// Store → app: write acknowledged.
    WriteAck {
        /// Key written.
        key: u64,
        /// Version assigned.
        version: u64,
    },
    /// Store → cache: batched invalidations for the last interval.
    Invalidate {
        /// Sequence number for reliable delivery.
        seq: u64,
        /// Keys to mark stale.
        keys: Vec<u64>,
    },
    /// Store → cache: batched updates for the last interval.
    Update {
        /// Sequence number for reliable delivery.
        seq: u64,
        /// Refreshed items (values carried on the wire).
        items: Vec<UpdateItem>,
    },
    /// Cache → store: acknowledgement of an Invalidate/Update batch.
    Ack {
        /// Sequence number being acknowledged.
        seq: u64,
    },
    /// Client → cache server: staleness-bounded read. The serving-path
    /// analogue of [`Message::ReadReq`] with the paper's freshness
    /// contract made explicit per request.
    GetReq {
        /// Client-chosen id echoed on the matching [`Message::GetResp`].
        id: RequestId,
        /// Key to read.
        key: u64,
        /// Maximum acceptable staleness in nanoseconds since the entry
        /// was last made fresh; `u64::MAX` means "any age is fine".
        max_staleness: u64,
    },
    /// Cache server → client: result of a [`Message::GetReq`].
    GetResp {
        /// Echo of the request's id ([`RequestId::NONE`] for legacy
        /// requests).
        id: RequestId,
        /// Key read.
        key: u64,
        /// Version served (0 when nothing was served).
        version: u64,
        /// The value served, carried verbatim on the wire (empty when
        /// nothing was served — a refusal or miss carries no bytes).
        value: Bytes,
        /// Age of the served entry in nanoseconds since it was last made
        /// fresh (0 when nothing was served).
        age: u64,
        /// How the read was resolved against the freshness contract.
        status: GetStatus,
    },
    /// Client → cache server: write-through with a per-key TTL. The
    /// serving-path analogue of [`Message::WriteReq`].
    PutReq {
        /// Client-chosen id echoed on the matching [`Message::PutResp`].
        id: RequestId,
        /// Key written.
        key: u64,
        /// The value written, carried verbatim on the wire.
        value: Bytes,
        /// Time-to-live in nanoseconds; 0 means "no TTL" (fresh until
        /// invalidated or evicted).
        ttl: u64,
    },
    /// Cache server → client: write acknowledged with the version the
    /// server assigned (monotone per key).
    PutResp {
        /// Echo of the request's id ([`RequestId::NONE`] for legacy
        /// requests).
        id: RequestId,
        /// Key written.
        key: u64,
        /// Version assigned by the server.
        version: u64,
    },
    /// Cache server → origin: refetch a key whose bounded read would have
    /// been refused or missed (§3.1's cache-aside backchannel). One
    /// refetch is in flight per key per reactor loop — concurrent readers
    /// park on the in-flight-refetch table and are answered together.
    FetchReq {
        /// Key to refetch.
        key: u64,
    },
    /// Origin → cache server: the refreshed value. Serving it also clears
    /// the origin-side invalidation-tracker mark for the key, re-arming
    /// push suppression (§3.1).
    FetchResp {
        /// Key refetched.
        key: u64,
        /// Origin's version (provenance only — the cache re-versions the
        /// entry from its own serving counter, see PROTOCOL.md).
        version: u64,
        /// The refreshed value, carried verbatim on the wire.
        value: Bytes,
    },
    /// Cache server → origin: fire-and-forget per-key read counts since
    /// the last report, feeding the origin's `E[W]` estimator so the
    /// adaptive invalidate-vs-update policy sees live read frequencies.
    ReadStats {
        /// Per-key read deltas (bounded batch; see the codec's limits).
        entries: Vec<ReadStat>,
    },
    /// Client → cache server: query the server's freshness-loop counters.
    /// Used by loadgen to report refetch activity for a run.
    StatsReq,
    /// Cache server → client: freshness-loop counters at this instant.
    StatsResp {
        /// Refetches sent to the origin.
        refetches: u64,
        /// Bounded reads coalesced onto an already-in-flight refetch.
        refetch_coalesced: u64,
        /// Bounded reads degraded to `RefusedStale`/`Miss` because the
        /// origin was unreachable or a fetch failed.
        origin_errors: u64,
        /// Requests whose key was owned by a different event loop and
        /// was forwarded over the cross-core channel.
        cross_core_forwards: u64,
        /// Live entries across all event-loop-owned slab shards.
        slab_entries: u64,
        /// Allocated slab slots (live + free-listed) across all owned
        /// shards — the slab memory high-water mark.
        slab_capacity: u64,
        /// Membership epoch this node is currently serving under (0 when
        /// the node has never adopted a membership — solo operation).
        epoch: u64,
        /// Keys received via streaming handoff (`Update` batches closed
        /// by a [`Message::HandoffDone`]) since the node started.
        handoff_in: u64,
        /// Keys this node streamed out to new owners on epoch changes.
        handoff_out: u64,
    },
    /// Controller/peer → cache server (or server → client, answering a
    /// [`Message::RingReq`]): the authoritative member list for a
    /// membership epoch. A node adopts the update iff `epoch` is newer
    /// than its current one, then streams every key it no longer owns to
    /// the key's new owner as bulk [`Message::Update`] batches.
    RingUpdate {
        /// Monotone membership epoch; higher wins, ties are ignored.
        epoch: u64,
        /// Every member's advertised address, in ring order. Placement
        /// is a pure function of this list (and the vnode count), so all
        /// participants that adopt the same epoch compute the same ring.
        members: Vec<String>,
    },
    /// Cache server → sender: membership update acknowledged. Echoes the
    /// epoch the node is on *after* processing — the sender can tell an
    /// adoption (`epoch` matches the update) from a stale update the
    /// node ignored (`epoch` is higher).
    RingAck {
        /// The node's current epoch after processing the update.
        epoch: u64,
    },
    /// Any client → cache server: ask for the current membership. The
    /// server answers with a [`Message::RingUpdate`] carrying its
    /// current epoch and member list (epoch 0 and an empty list when the
    /// node is solo).
    RingReq,
    /// Joining node (or operator) → any member: add `node` to the
    /// membership. The receiving member bumps the epoch, adopts the new
    /// ring, broadcasts the resulting [`Message::RingUpdate`] to every
    /// other member, and replies with that same update so the joiner
    /// learns the full membership it just entered.
    JoinReq {
        /// Advertised address of the node joining the ring.
        node: String,
    },
    /// Operator (or a departing node) → any member: remove `node` from
    /// the membership. Same epoch-bump/broadcast/reply contract as
    /// [`Message::JoinReq`]; the reply is the post-departure
    /// [`Message::RingUpdate`].
    LeaveReq {
        /// Advertised address of the node leaving the ring.
        node: String,
    },
    /// Handing-off node → new owner: the streaming handoff for `epoch`
    /// on this connection is complete; `keys` entries were transferred
    /// (as acked [`Message::Update`] batches preceding this frame).
    /// Fire-and-forget — the per-batch `Ack`s already confirmed receipt;
    /// this frame closes the receiver's `handoff_in` accounting.
    HandoffDone {
        /// Epoch whose ownership transfer this stream completed.
        epoch: u64,
        /// Number of keys streamed ahead of this marker.
        keys: u64,
    },
}

impl Message {
    /// Exact encoded size in bytes (header + fields + carried values),
    /// kept in lock-step with the codec by a round-trip test.
    pub fn wire_size(&self) -> usize {
        // Frame header: u32 length + u8 type tag.
        const HDR: usize = 5;
        match self {
            Message::ReadReq { .. } => HDR + 8,
            Message::ReadResp { value_size, .. } => HDR + 8 + 8 + 4 + *value_size as usize,
            Message::WriteReq { value_size, .. } => HDR + 8 + 4 + *value_size as usize,
            Message::WriteAck { .. } => HDR + 8 + 8,
            Message::Invalidate { keys, .. } => HDR + 8 + 4 + keys.len() * 8,
            Message::Update { items, .. } => {
                HDR + 8
                    + 4
                    + items
                        .iter()
                        .map(|it| 8 + 8 + 4 + it.value.len())
                        .sum::<usize>()
            }
            Message::Ack { .. } => HDR + 8,
            // Serving-path messages: the request id occupies 8 wire bytes
            // unless it is RequestId::NONE, which encodes as the legacy
            // id-less tag (see the codec's backward-compat rules).
            Message::GetReq { id, .. } => HDR + id.wire_size() + 8 + 8,
            Message::GetResp { id, value, .. } => {
                HDR + id.wire_size() + 8 + 8 + 4 + 8 + 1 + value.len()
            }
            Message::PutReq { id, value, .. } => {
                HDR + id.wire_size() + 8 + 4 + 8 + value.len()
            }
            Message::PutResp { id, .. } => HDR + id.wire_size() + 8 + 8,
            Message::FetchReq { .. } => HDR + 8,
            Message::FetchResp { value, .. } => HDR + 8 + 8 + 4 + value.len(),
            Message::ReadStats { entries } => HDR + 4 + entries.len() * 12,
            Message::StatsReq => HDR,
            Message::StatsResp { .. } => HDR + 9 * 8,
            // Membership strings travel as u16 length + UTF-8 bytes.
            Message::RingUpdate { members, .. } => {
                HDR + 8 + 4 + members.iter().map(|m| 2 + m.len()).sum::<usize>()
            }
            Message::RingAck { .. } => HDR + 8,
            Message::RingReq => HDR,
            Message::JoinReq { node } | Message::LeaveReq { node } => HDR + 2 + node.len(),
            Message::HandoffDone { .. } => HDR + 8 + 8,
        }
    }

    /// Sequence number for reliable batches, if this message carries one.
    pub fn seq(&self) -> Option<u64> {
        match self {
            Message::Invalidate { seq, .. } | Message::Update { seq, .. } | Message::Ack { seq } => {
                Some(*seq)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = Message::ReadResp { key: 1, version: 1, value_size: 10 };
        let big = Message::ReadResp { key: 1, version: 1, value_size: 1000 };
        assert_eq!(big.wire_size() - small.wire_size(), 990);
        // Invalidates carry keys only — independent of value size.
        let inv = Message::Invalidate { seq: 0, keys: vec![1, 2, 3] };
        assert_eq!(inv.wire_size(), 5 + 8 + 4 + 24);
    }

    #[test]
    fn invalidate_smaller_than_update_for_same_keys() {
        // The heart of the c_i < c_u assumption: invalidates don't carry
        // values.
        let keys = vec![1u64, 2, 3];
        let inv = Message::Invalidate { seq: 0, keys: keys.clone() };
        let upd = Message::Update {
            seq: 0,
            items: keys
                .iter()
                .map(|&k| UpdateItem { key: k, version: 1, value: crate::payload::zeroes(500) })
                .collect(),
        };
        assert!(inv.wire_size() < upd.wire_size());
    }

    #[test]
    fn seq_only_on_reliable_messages() {
        assert_eq!(Message::ReadReq { key: 1 }.seq(), None);
        assert_eq!(Message::Ack { seq: 7 }.seq(), Some(7));
        assert_eq!(Message::Invalidate { seq: 9, keys: vec![] }.seq(), Some(9));
        assert_eq!(
            Message::GetReq { id: RequestId(1), key: 1, max_staleness: 0 }.seq(),
            None
        );
        assert_eq!(
            Message::PutReq { id: RequestId(2), key: 1, value: Bytes::new(), ttl: 0 }.seq(),
            None
        );
    }

    #[test]
    fn serving_path_wire_sizes() {
        assert_eq!(
            Message::GetReq { id: RequestId(7), key: 1, max_staleness: u64::MAX }.wire_size(),
            29
        );
        // RequestId::NONE encodes as the legacy id-less tag: 8 bytes less.
        assert_eq!(
            Message::GetReq { id: RequestId::NONE, key: 1, max_staleness: u64::MAX }.wire_size(),
            21
        );
        assert_eq!(
            Message::PutResp { id: RequestId::NONE, key: 1, version: 9 }.wire_size(),
            21
        );
        let served = Message::GetResp {
            id: RequestId(7),
            key: 1,
            version: 2,
            value: crate::payload::pattern(1, 100),
            age: 5,
            status: GetStatus::Fresh,
        };
        assert_eq!(served.wire_size(), 5 + 8 + 8 + 8 + 4 + 8 + 1 + 100);
        assert_eq!(
            Message::PutReq {
                id: RequestId(8),
                key: 1,
                value: crate::payload::pattern(1, 64),
                ttl: 7
            }
            .wire_size(),
            5 + 8 + 8 + 4 + 8 + 64
        );
        assert_eq!(Message::PutResp { id: RequestId(8), key: 1, version: 9 }.wire_size(), 29);
    }

    #[test]
    fn freshness_loop_wire_sizes() {
        assert_eq!(Message::FetchReq { key: 1 }.wire_size(), 13);
        let resp = Message::FetchResp {
            key: 1,
            version: 3,
            value: crate::payload::pattern(1, 100),
        };
        assert_eq!(resp.wire_size(), 5 + 8 + 8 + 4 + 100);
        let stats = Message::ReadStats {
            entries: vec![ReadStat { key: 1, reads: 4 }, ReadStat { key: 2, reads: 1 }],
        };
        assert_eq!(stats.wire_size(), 5 + 4 + 2 * 12);
        assert_eq!(Message::StatsReq.wire_size(), 5);
        assert_eq!(
            Message::StatsResp {
                refetches: 1,
                refetch_coalesced: 2,
                origin_errors: 3,
                cross_core_forwards: 4,
                slab_entries: 5,
                slab_capacity: 6,
                epoch: 7,
                handoff_in: 8,
                handoff_out: 9,
            }
            .wire_size(),
            77
        );
        // A fetch response is cheaper than an update batch for the same
        // value: no seq, no per-item framing — it answers exactly one key.
        let upd = Message::Update {
            seq: 1,
            items: vec![UpdateItem { key: 1, version: 3, value: crate::payload::pattern(1, 100) }],
        };
        assert!(resp.wire_size() < upd.wire_size());
    }

    #[test]
    fn membership_wire_sizes() {
        let members = vec!["127.0.0.1:7001".to_string(), "127.0.0.1:7002".to_string()];
        let update = Message::RingUpdate { epoch: 3, members: members.clone() };
        // header + epoch + count + per-member (u16 len + bytes).
        assert_eq!(update.wire_size(), 5 + 8 + 4 + 2 * (2 + 14));
        assert_eq!(Message::RingAck { epoch: 3 }.wire_size(), 13);
        assert_eq!(Message::RingReq.wire_size(), 5);
        assert_eq!(
            Message::JoinReq { node: "127.0.0.1:7003".into() }.wire_size(),
            5 + 2 + 14
        );
        assert_eq!(
            Message::LeaveReq { node: "127.0.0.1:7003".into() }.wire_size(),
            5 + 2 + 14
        );
        assert_eq!(Message::HandoffDone { epoch: 3, keys: 512 }.wire_size(), 21);
    }

    #[test]
    fn request_id_ordering_and_none() {
        assert!(RequestId::NONE.is_none());
        assert!(!RequestId(1).is_none());
        assert!(RequestId(2) > RequestId(1));
        assert_eq!(RequestId::default(), RequestId::NONE);
        assert_eq!(RequestId(42).to_string(), "req#42");
    }

    #[test]
    fn get_status_byte_roundtrip() {
        for s in [
            GetStatus::Fresh,
            GetStatus::ServedStale,
            GetStatus::RefusedStale,
            GetStatus::Miss,
        ] {
            assert_eq!(GetStatus::from_u8(s.as_u8()), Some(s));
        }
        assert_eq!(GetStatus::from_u8(4), None);
        assert!(GetStatus::Fresh.is_served());
        assert!(GetStatus::ServedStale.is_served());
        assert!(!GetStatus::RefusedStale.is_served());
        assert!(!GetStatus::Miss.is_served());
    }
}
