//! Protocol messages between the application, cache and data store.
//!
//! Payload values are represented by their size: the simulation never
//! inspects value bytes, but wire sizes must be exact because the cost
//! model scales `c_u`/`c_i`/`c_m` by message size when the network is the
//! bottleneck (§3.3).

use serde::{Deserialize, Serialize};

/// One item of a batched update message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateItem {
    /// Key being refreshed.
    pub key: u64,
    /// Backend version after the write burst.
    pub version: u64,
    /// Value size in bytes (the wire carries the value itself).
    pub value_size: u32,
}

/// Protocol messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// Cache → store: fetch a key (miss path or poll).
    ReadReq {
        /// Key to fetch.
        key: u64,
    },
    /// Store → cache: value response.
    ReadResp {
        /// Key fetched.
        key: u64,
        /// Version served.
        version: u64,
        /// Size of the value carried.
        value_size: u32,
    },
    /// App → store: write a key (bypasses the cache).
    WriteReq {
        /// Key written.
        key: u64,
        /// New value size (value carried on the wire).
        value_size: u32,
    },
    /// Store → app: write acknowledged.
    WriteAck {
        /// Key written.
        key: u64,
        /// Version assigned.
        version: u64,
    },
    /// Store → cache: batched invalidations for the last interval.
    Invalidate {
        /// Sequence number for reliable delivery.
        seq: u64,
        /// Keys to mark stale.
        keys: Vec<u64>,
    },
    /// Store → cache: batched updates for the last interval.
    Update {
        /// Sequence number for reliable delivery.
        seq: u64,
        /// Refreshed items (values carried on the wire).
        items: Vec<UpdateItem>,
    },
    /// Cache → store: acknowledgement of an Invalidate/Update batch.
    Ack {
        /// Sequence number being acknowledged.
        seq: u64,
    },
}

impl Message {
    /// Exact encoded size in bytes (header + fields + carried values),
    /// kept in lock-step with the codec by a round-trip test.
    pub fn wire_size(&self) -> usize {
        // Frame header: u32 length + u8 type tag.
        const HDR: usize = 5;
        match self {
            Message::ReadReq { .. } => HDR + 8,
            Message::ReadResp { value_size, .. } => HDR + 8 + 8 + 4 + *value_size as usize,
            Message::WriteReq { value_size, .. } => HDR + 8 + 4 + *value_size as usize,
            Message::WriteAck { .. } => HDR + 8 + 8,
            Message::Invalidate { keys, .. } => HDR + 8 + 4 + keys.len() * 8,
            Message::Update { items, .. } => {
                HDR + 8
                    + 4
                    + items
                        .iter()
                        .map(|it| 8 + 8 + 4 + it.value_size as usize)
                        .sum::<usize>()
            }
            Message::Ack { .. } => HDR + 8,
        }
    }

    /// Sequence number for reliable batches, if this message carries one.
    pub fn seq(&self) -> Option<u64> {
        match self {
            Message::Invalidate { seq, .. } | Message::Update { seq, .. } | Message::Ack { seq } => {
                Some(*seq)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = Message::ReadResp { key: 1, version: 1, value_size: 10 };
        let big = Message::ReadResp { key: 1, version: 1, value_size: 1000 };
        assert_eq!(big.wire_size() - small.wire_size(), 990);
        // Invalidates carry keys only — independent of value size.
        let inv = Message::Invalidate { seq: 0, keys: vec![1, 2, 3] };
        assert_eq!(inv.wire_size(), 5 + 8 + 4 + 24);
    }

    #[test]
    fn invalidate_smaller_than_update_for_same_keys() {
        // The heart of the c_i < c_u assumption: invalidates don't carry
        // values.
        let keys = vec![1u64, 2, 3];
        let inv = Message::Invalidate { seq: 0, keys: keys.clone() };
        let upd = Message::Update {
            seq: 0,
            items: keys
                .iter()
                .map(|&k| UpdateItem { key: k, version: 1, value_size: 500 })
                .collect(),
        };
        assert!(inv.wire_size() < upd.wire_size());
    }

    #[test]
    fn seq_only_on_reliable_messages() {
        assert_eq!(Message::ReadReq { key: 1 }.seq(), None);
        assert_eq!(Message::Ack { seq: 7 }.seq(), Some(7));
        assert_eq!(Message::Invalidate { seq: 9, keys: vec![] }.seq(), Some(9));
    }
}
