//! Length-prefixed binary framing.
//!
//! Frame layout: `u32` total-length (including the 5-byte header), `u8`
//! message type, then type-specific fields in big-endian. Serving-path
//! values (`GetResp`/`PutReq`/`Update` items) are carried as **real
//! bytes**, length-prefixed by a `u32`; the decoder slices them straight
//! out of its accumulation buffer as refcounted [`Bytes`] views
//! (`split_to().freeze()`), so decoding a value allocates no
//! payload-sized buffer. Simulation-path values (`ReadResp`/`WriteReq`)
//! are opaque zero bytes of the declared size — the simulator never
//! reads them, but they occupy wire bytes so that measured message sizes
//! match [`crate::Message::wire_size`] exactly.
//!
//! The decoder is *streaming*: feed it arbitrary byte chunks, it yields
//! complete messages and buffers partial frames (the Tokio-tutorial
//! framing pattern, without the async machinery the simulation doesn't
//! need).
//!
//! Encoding has two shapes: [`FrameCodec::encode`] renders a frame
//! contiguously into one buffer (payload copied — right for the blocking
//! transport), and [`FrameCodec::encode_into`] hands every payload to a
//! caller-supplied sink instead of copying it, which is how
//! [`crate::NonBlockingFramedStream`] builds its zero-copy segment queue.

use crate::msg::{GetStatus, Message, ReadStat, RequestId, UpdateItem};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Maximum accepted frame size; larger frames are a protocol error (guards
/// against a corrupted length prefix swallowing the stream).
pub const MAX_FRAME: usize = 64 << 20;

/// Maximum accepted size of one value payload (16 MiB). A declared
/// `value_size` beyond this is rejected with
/// [`CodecError::ValueTooLarge`]; for single-value messages the check
/// runs as soon as the field's fixed-offset bytes are buffered — a
/// corrupted or hostile length field is refused after a few dozen
/// bytes, not after payload-sized accumulation. (`Update` batches hold
/// values at variable offsets; their buffering, like any frame's, is
/// bounded by [`MAX_FRAME`].) Encoding a message that violates the
/// limit is a programming error (debug-asserted).
pub const MAX_VALUE: usize = 16 << 20;

const TAG_READ_REQ: u8 = 1;
const TAG_READ_RESP: u8 = 2;
const TAG_WRITE_REQ: u8 = 3;
const TAG_WRITE_ACK: u8 = 4;
const TAG_INVALIDATE: u8 = 5;
const TAG_UPDATE: u8 = 6;
const TAG_ACK: u8 = 7;
// Legacy id-less serving-path tags. The encoder emits them only for
// messages whose id is `RequestId::NONE` — which is exactly what a
// request decoded from a legacy frame carries, so a response to an old
// peer is byte-compatible with that peer's decoder — and the decoder
// accepts them forever.
const TAG_GET_REQ: u8 = 8;
const TAG_GET_RESP: u8 = 9;
const TAG_PUT_REQ: u8 = 10;
const TAG_PUT_RESP: u8 = 11;
// Id-carrying serving-path tags: same body as their legacy counterpart
// with a u64 request id prepended.
const TAG_GET_REQ_ID: u8 = 12;
const TAG_GET_RESP_ID: u8 = 13;
const TAG_PUT_REQ_ID: u8 = 14;
const TAG_PUT_RESP_ID: u8 = 15;
// Freshness-control-loop tags: cache-node→origin refetch (§3.1's
// backchannel), the read-frequency stats feed for the adaptive policy
// (§3.3), and the counters clients query to observe the loop.
const TAG_FETCH_REQ: u8 = 16;
const TAG_FETCH_RESP: u8 = 17;
const TAG_READ_STATS: u8 = 18;
const TAG_STATS_REQ: u8 = 19;
const TAG_STATS_RESP: u8 = 20;
// Membership tags: versioned ring epochs, join/leave requests, and the
// handoff-completion marker. Node addresses travel as u16-length-prefixed
// UTF-8; the member list as a u32 count of such entries.
const TAG_RING_UPDATE: u8 = 21;
const TAG_RING_ACK: u8 = 22;
const TAG_RING_REQ: u8 = 23;
const TAG_JOIN_REQ: u8 = 24;
const TAG_LEAVE_REQ: u8 = 25;
const TAG_HANDOFF_DONE: u8 = 26;

/// Maximum accepted length of one member address string. Addresses are
/// host:port text; anything beyond this is a corrupted or hostile frame.
pub const MAX_MEMBER_LEN: usize = 256;

/// Maximum accepted member count in one `RingUpdate`. Far above any
/// deployable cluster size, low enough that a corrupted count cannot
/// drive a large allocation.
pub const MAX_MEMBERS: usize = 4096;

/// Decode errors. Encoding is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Unknown message type byte (or an unknown enum byte inside a
    /// frame, e.g. a [`GetStatus`] the decoder does not recognise).
    UnknownTag(u8),
    /// Declared frame length exceeds [`MAX_FRAME`] or is shorter than a
    /// header.
    BadLength(u32),
    /// Declared value size exceeds [`MAX_VALUE`].
    ValueTooLarge(u32),
    /// Frame contents shorter than its fields require.
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            CodecError::BadLength(l) => write!(f, "bad frame length {l}"),
            CodecError::ValueTooLarge(n) => {
                write!(f, "declared value size {n} exceeds the {MAX_VALUE}-byte limit")
            }
            CodecError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Bytes of a message that travel as value payloads a zero-copy sink
/// may divert (everything else is headers/fields that always land in
/// the staging buffer). Simulation-path zero-fill values are *not*
/// counted: they are synthesized into the buffer, not diverted.
fn payload_bytes(msg: &Message) -> usize {
    match msg {
        Message::GetResp { value, .. }
        | Message::PutReq { value, .. }
        | Message::FetchResp { value, .. } => value.len(),
        Message::Update { items, .. } => items.iter().map(|it| it.value.len()).sum(),
        _ => 0,
    }
}

/// Streaming frame codec.
///
/// ```
/// use bytes::BytesMut;
/// use fresca_net::{FrameCodec, Message, RequestId};
///
/// // Encode two messages back-to-back...
/// let get = Message::GetReq { id: RequestId(1), key: 1, max_staleness: u64::MAX };
/// let mut wire = BytesMut::new();
/// FrameCodec::encode(&get, &mut wire);
/// FrameCodec::encode(&Message::Ack { seq: 2 }, &mut wire);
///
/// // ...and decode them from arbitrary chunks on the other side.
/// let mut codec = FrameCodec::new();
/// codec.feed(&wire);
/// assert_eq!(codec.next().unwrap(), Some(get));
/// assert_eq!(codec.next().unwrap(), Some(Message::Ack { seq: 2 }));
/// assert_eq!(codec.next().unwrap(), None); // need more bytes
/// ```
#[derive(Debug, Default)]
pub struct FrameCodec {
    buf: BytesMut,
}

impl FrameCodec {
    /// New codec with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no partial frame is buffered — i.e. the byte stream, if
    /// it ended here, would end on a clean frame boundary. Used by
    /// [`crate::FramedStream`] to tell a clean EOF from a truncated one.
    pub fn is_idle(&self) -> bool {
        self.buf.is_empty()
    }

    /// True when [`next`](FrameCodec::next) would make progress without
    /// further input: a complete frame is buffered, or the buffered
    /// length prefix is already detectably invalid. Event loops use this
    /// to tell "frames pending in the decoder" apart from "waiting on
    /// the socket" — a connection with buffered frames must be serviced
    /// even if its descriptor never polls readable again.
    pub fn has_frame(&self) -> bool {
        match self.peek_len() {
            None => false,
            Some(Err(_)) => true,
            Some(Ok(len)) => self.buf.len() >= len || self.early_value_check().is_err(),
        }
    }

    /// Parse the buffered length prefix, the one piece of header
    /// validation shared by [`next`](FrameCodec::next) and
    /// [`has_frame`](FrameCodec::has_frame) (so the two can never
    /// diverge): `None` until 4 bytes are buffered, `Some(Err)` for a
    /// length outside `5..=MAX_FRAME`.
    fn peek_len(&self) -> Option<Result<usize, CodecError>> {
        let buf: &[u8] = &self.buf;
        if buf.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        if !(5..=MAX_FRAME as u32).contains(&len) {
            return Some(Err(CodecError::BadLength(len)));
        }
        Some(Ok(len as usize))
    }

    /// Encode one message contiguously into `out` (payload bytes are
    /// copied). This is the right shape for the blocking transport and
    /// tests; the event-loop write path uses
    /// [`encode_into`](FrameCodec::encode_into) to keep large payloads
    /// out of its staging buffer entirely.
    pub fn encode(msg: &Message, out: &mut BytesMut) {
        // The sink below copies payloads into `out`, so the full frame
        // lands here — reserve for all of it up front.
        out.reserve(msg.wire_size().min(MAX_FRAME));
        Self::encode_into(msg, out, |out, payload| out.extend_from_slice(payload));
    }

    /// Encode one message, routing every non-empty value payload through
    /// `emit_payload` instead of unconditionally copying it. The sink is
    /// called exactly where the payload's bytes belong in the frame; it
    /// may copy them into `out` (then the result is byte-identical to
    /// [`encode`](FrameCodec::encode)) or divert the refcounted
    /// [`Bytes`] handle into a scatter-gather segment queue, leaving
    /// `out` holding only the bytes *around* it. Empty payloads occupy
    /// no frame bytes, so the sink never sees them.
    pub fn encode_into(
        msg: &Message,
        out: &mut BytesMut,
        mut emit_payload: impl FnMut(&mut BytesMut, &Bytes),
    ) {
        let mut emit_payload = move |out: &mut BytesMut, payload: &Bytes| {
            if !payload.is_empty() {
                emit_payload(out, payload);
            }
        };
        let total = msg.wire_size();
        debug_assert!(total <= MAX_FRAME, "frame exceeds MAX_FRAME");
        // Reserve only the bytes guaranteed to land in `out`: the sink
        // may divert every payload to a segment queue, and a 16 MiB
        // value must not force a 16 MiB staging allocation for ~34
        // header bytes. (A sink that copies payloads inline just grows
        // `out` as it goes; `encode` pre-reserves the full frame.)
        out.reserve((total - payload_bytes(msg)).min(MAX_FRAME));
        out.put_u32(total as u32);
        match msg {
            Message::ReadReq { key } => {
                out.put_u8(TAG_READ_REQ);
                out.put_u64(*key);
            }
            Message::ReadResp { key, version, value_size } => {
                debug_assert!(*value_size as usize <= MAX_VALUE, "value exceeds MAX_VALUE");
                out.put_u8(TAG_READ_RESP);
                out.put_u64(*key);
                out.put_u64(*version);
                out.put_u32(*value_size);
                out.put_bytes(0, *value_size as usize);
            }
            Message::WriteReq { key, value_size } => {
                debug_assert!(*value_size as usize <= MAX_VALUE, "value exceeds MAX_VALUE");
                out.put_u8(TAG_WRITE_REQ);
                out.put_u64(*key);
                out.put_u32(*value_size);
                out.put_bytes(0, *value_size as usize);
            }
            Message::WriteAck { key, version } => {
                out.put_u8(TAG_WRITE_ACK);
                out.put_u64(*key);
                out.put_u64(*version);
            }
            Message::Invalidate { seq, keys } => {
                out.put_u8(TAG_INVALIDATE);
                out.put_u64(*seq);
                out.put_u32(keys.len() as u32);
                for k in keys {
                    out.put_u64(*k);
                }
            }
            Message::Update { seq, items } => {
                out.put_u8(TAG_UPDATE);
                out.put_u64(*seq);
                out.put_u32(items.len() as u32);
                for it in items {
                    debug_assert!(it.value.len() <= MAX_VALUE, "value exceeds MAX_VALUE");
                    out.put_u64(it.key);
                    out.put_u64(it.version);
                    out.put_u32(it.value.len() as u32);
                    emit_payload(out, &it.value);
                }
            }
            Message::Ack { seq } => {
                out.put_u8(TAG_ACK);
                out.put_u64(*seq);
            }
            Message::GetReq { id, key, max_staleness } => {
                Self::put_serving_tag(out, *id, TAG_GET_REQ, TAG_GET_REQ_ID);
                out.put_u64(*key);
                out.put_u64(*max_staleness);
            }
            Message::GetResp { id, key, version, value, age, status } => {
                debug_assert!(value.len() <= MAX_VALUE, "value exceeds MAX_VALUE");
                Self::put_serving_tag(out, *id, TAG_GET_RESP, TAG_GET_RESP_ID);
                out.put_u64(*key);
                out.put_u64(*version);
                out.put_u32(value.len() as u32);
                out.put_u64(*age);
                out.put_u8(status.as_u8());
                emit_payload(out, value);
            }
            Message::PutReq { id, key, value, ttl } => {
                debug_assert!(value.len() <= MAX_VALUE, "value exceeds MAX_VALUE");
                Self::put_serving_tag(out, *id, TAG_PUT_REQ, TAG_PUT_REQ_ID);
                out.put_u64(*key);
                out.put_u32(value.len() as u32);
                out.put_u64(*ttl);
                emit_payload(out, value);
            }
            Message::PutResp { id, key, version } => {
                Self::put_serving_tag(out, *id, TAG_PUT_RESP, TAG_PUT_RESP_ID);
                out.put_u64(*key);
                out.put_u64(*version);
            }
            Message::FetchReq { key } => {
                out.put_u8(TAG_FETCH_REQ);
                out.put_u64(*key);
            }
            Message::FetchResp { key, version, value } => {
                debug_assert!(value.len() <= MAX_VALUE, "value exceeds MAX_VALUE");
                out.put_u8(TAG_FETCH_RESP);
                out.put_u64(*key);
                out.put_u64(*version);
                out.put_u32(value.len() as u32);
                emit_payload(out, value);
            }
            Message::ReadStats { entries } => {
                out.put_u8(TAG_READ_STATS);
                out.put_u32(entries.len() as u32);
                for e in entries {
                    out.put_u64(e.key);
                    out.put_u32(e.reads);
                }
            }
            Message::StatsReq => {
                out.put_u8(TAG_STATS_REQ);
            }
            Message::StatsResp {
                refetches,
                refetch_coalesced,
                origin_errors,
                cross_core_forwards,
                slab_entries,
                slab_capacity,
                epoch,
                handoff_in,
                handoff_out,
            } => {
                out.put_u8(TAG_STATS_RESP);
                out.put_u64(*refetches);
                out.put_u64(*refetch_coalesced);
                out.put_u64(*origin_errors);
                out.put_u64(*cross_core_forwards);
                out.put_u64(*slab_entries);
                out.put_u64(*slab_capacity);
                out.put_u64(*epoch);
                out.put_u64(*handoff_in);
                out.put_u64(*handoff_out);
            }
            Message::RingUpdate { epoch, members } => {
                debug_assert!(members.len() <= MAX_MEMBERS, "member count exceeds limit");
                out.put_u8(TAG_RING_UPDATE);
                out.put_u64(*epoch);
                out.put_u32(members.len() as u32);
                for m in members {
                    debug_assert!(m.len() <= MAX_MEMBER_LEN, "member address too long");
                    out.put_u16(m.len() as u16);
                    out.extend_from_slice(m.as_bytes());
                }
            }
            Message::RingAck { epoch } => {
                out.put_u8(TAG_RING_ACK);
                out.put_u64(*epoch);
            }
            Message::RingReq => {
                out.put_u8(TAG_RING_REQ);
            }
            Message::JoinReq { node } => {
                debug_assert!(node.len() <= MAX_MEMBER_LEN, "member address too long");
                out.put_u8(TAG_JOIN_REQ);
                out.put_u16(node.len() as u16);
                out.extend_from_slice(node.as_bytes());
            }
            Message::LeaveReq { node } => {
                debug_assert!(node.len() <= MAX_MEMBER_LEN, "member address too long");
                out.put_u8(TAG_LEAVE_REQ);
                out.put_u16(node.len() as u16);
                out.extend_from_slice(node.as_bytes());
            }
            Message::HandoffDone { epoch, keys } => {
                out.put_u8(TAG_HANDOFF_DONE);
                out.put_u64(*epoch);
                out.put_u64(*keys);
            }
        }
    }

    /// Write a serving-path tag: the legacy id-less form when `id` is
    /// [`RequestId::NONE`] (so replies to legacy peers stay decodable by
    /// them), the id-carrying form otherwise.
    fn put_serving_tag(out: &mut BytesMut, id: RequestId, legacy: u8, with_id: u8) {
        if id.is_none() {
            out.put_u8(legacy);
        } else {
            out.put_u8(with_id);
            out.put_u64(id.0);
        }
    }

    /// Feed raw bytes into the decoder.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Try to decode the next complete frame. `Ok(None)` means "need more
    /// bytes". (Named like, but distinct from, `Iterator::next` — the
    /// fallible tri-state return does not fit the trait.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Message>, CodecError> {
        let len = match self.peek_len() {
            None => return Ok(None),
            Some(Err(e)) => return Err(e),
            Some(Ok(len)) => len,
        };
        if self.buf.len() < len {
            // The frame is incomplete, but for single-value messages the
            // declared value size sits at a fixed offset — reject an
            // over-limit declaration now rather than buffering up to
            // MAX_FRAME of a payload that can never decode.
            self.early_value_check()?;
            return Ok(None);
        }
        let mut frame = self.buf.split_to(len);
        frame.advance(4); // length
        let tag = frame.get_u8();
        let msg = Self::decode_body(tag, &mut frame)?;
        Ok(Some(msg))
    }

    /// Early rejection for partial frames: if the buffered prefix of a
    /// payload-carrying message already shows a `value_size` beyond
    /// [`MAX_VALUE`], fail now. Covers every fixed-offset value field
    /// (`ReadResp`, `WriteReq`, `GetResp`/`PutReq` in both tag forms,
    /// and an `Update` batch's first item); later `Update` items sit at
    /// variable offsets and are caught at decode, where buffering is
    /// bounded by [`MAX_FRAME`] like any other batch.
    fn early_value_check(&self) -> Result<(), CodecError> {
        let buf: &[u8] = &self.buf;
        if buf.len() < 5 {
            return Ok(());
        }
        // Offset of the u32 value_size field from the frame start.
        let at = match buf[4] {
            TAG_WRITE_REQ | TAG_PUT_REQ => 13,
            TAG_READ_RESP | TAG_GET_RESP | TAG_PUT_REQ_ID | TAG_FETCH_RESP => 21,
            TAG_GET_RESP_ID => 29,
            TAG_UPDATE => 33, // first item's value_size
            _ => return Ok(()),
        };
        if buf.len() < at + 4 {
            return Ok(());
        }
        let declared = u32::from_be_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]]);
        if declared as usize > MAX_VALUE {
            return Err(CodecError::ValueTooLarge(declared));
        }
        Ok(())
    }

    fn need(frame: &BytesMut, n: usize, what: &'static str) -> Result<(), CodecError> {
        if frame.remaining() < n {
            Err(CodecError::Malformed(what))
        } else {
            Ok(())
        }
    }

    /// Validate a declared payload size and slice that many bytes out of
    /// the frame as a refcounted view — the zero-copy heart of the
    /// decoder: no payload-sized buffer is allocated, the returned
    /// [`Bytes`] shares the accumulation buffer's allocation.
    fn take_value(
        frame: &mut BytesMut,
        declared: u32,
        what: &'static str,
    ) -> Result<Bytes, CodecError> {
        if declared as usize > MAX_VALUE {
            return Err(CodecError::ValueTooLarge(declared));
        }
        Self::need(frame, declared as usize, what)?;
        Ok(frame.split_to(declared as usize).freeze())
    }

    /// Validate and skip a simulation-path payload (declared size only).
    fn skip_value(
        frame: &mut BytesMut,
        declared: u32,
        what: &'static str,
    ) -> Result<(), CodecError> {
        if declared as usize > MAX_VALUE {
            return Err(CodecError::ValueTooLarge(declared));
        }
        Self::need(frame, declared as usize, what)?;
        frame.advance(declared as usize);
        Ok(())
    }

    fn decode_body(tag: u8, frame: &mut BytesMut) -> Result<Message, CodecError> {
        match tag {
            TAG_READ_REQ => {
                Self::need(frame, 8, "read-req key")?;
                Ok(Message::ReadReq { key: frame.get_u64() })
            }
            TAG_READ_RESP => {
                Self::need(frame, 20, "read-resp header")?;
                let key = frame.get_u64();
                let version = frame.get_u64();
                let value_size = frame.get_u32();
                Self::skip_value(frame, value_size, "read-resp value")?;
                Ok(Message::ReadResp { key, version, value_size })
            }
            TAG_WRITE_REQ => {
                Self::need(frame, 12, "write-req header")?;
                let key = frame.get_u64();
                let value_size = frame.get_u32();
                Self::skip_value(frame, value_size, "write-req value")?;
                Ok(Message::WriteReq { key, value_size })
            }
            TAG_WRITE_ACK => {
                Self::need(frame, 16, "write-ack")?;
                Ok(Message::WriteAck { key: frame.get_u64(), version: frame.get_u64() })
            }
            TAG_INVALIDATE => {
                Self::need(frame, 12, "invalidate header")?;
                let seq = frame.get_u64();
                let n = frame.get_u32() as usize;
                Self::need(frame, n * 8, "invalidate keys")?;
                let keys = (0..n).map(|_| frame.get_u64()).collect();
                Ok(Message::Invalidate { seq, keys })
            }
            TAG_UPDATE => {
                Self::need(frame, 12, "update header")?;
                let seq = frame.get_u64();
                let n = frame.get_u32() as usize;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    Self::need(frame, 20, "update item header")?;
                    let key = frame.get_u64();
                    let version = frame.get_u64();
                    let value_size = frame.get_u32();
                    let value = Self::take_value(frame, value_size, "update item value")?;
                    items.push(UpdateItem { key, version, value });
                }
                Ok(Message::Update { seq, items })
            }
            TAG_ACK => {
                Self::need(frame, 8, "ack")?;
                Ok(Message::Ack { seq: frame.get_u64() })
            }
            // Serving-path tags come in legacy (id-less) and id-carrying
            // pairs; the bodies are identical past the optional id.
            TAG_GET_REQ => Self::decode_get_req(RequestId::NONE, frame),
            TAG_GET_REQ_ID => {
                let id = Self::request_id(frame)?;
                Self::decode_get_req(id, frame)
            }
            TAG_GET_RESP => Self::decode_get_resp(RequestId::NONE, frame),
            TAG_GET_RESP_ID => {
                let id = Self::request_id(frame)?;
                Self::decode_get_resp(id, frame)
            }
            TAG_PUT_REQ => Self::decode_put_req(RequestId::NONE, frame),
            TAG_PUT_REQ_ID => {
                let id = Self::request_id(frame)?;
                Self::decode_put_req(id, frame)
            }
            TAG_PUT_RESP => Self::decode_put_resp(RequestId::NONE, frame),
            TAG_PUT_RESP_ID => {
                let id = Self::request_id(frame)?;
                Self::decode_put_resp(id, frame)
            }
            TAG_FETCH_REQ => {
                Self::need(frame, 8, "fetch-req key")?;
                Ok(Message::FetchReq { key: frame.get_u64() })
            }
            TAG_FETCH_RESP => {
                Self::need(frame, 20, "fetch-resp header")?;
                let key = frame.get_u64();
                let version = frame.get_u64();
                let value_size = frame.get_u32();
                let value = Self::take_value(frame, value_size, "fetch-resp value")?;
                Ok(Message::FetchResp { key, version, value })
            }
            TAG_READ_STATS => {
                Self::need(frame, 4, "read-stats header")?;
                let n = frame.get_u32() as usize;
                Self::need(frame, n * 12, "read-stats entries")?;
                let entries = (0..n)
                    .map(|_| ReadStat { key: frame.get_u64(), reads: frame.get_u32() })
                    .collect();
                Ok(Message::ReadStats { entries })
            }
            TAG_STATS_REQ => Ok(Message::StatsReq),
            TAG_STATS_RESP => {
                Self::need(frame, 72, "stats-resp")?;
                Ok(Message::StatsResp {
                    refetches: frame.get_u64(),
                    refetch_coalesced: frame.get_u64(),
                    origin_errors: frame.get_u64(),
                    cross_core_forwards: frame.get_u64(),
                    slab_entries: frame.get_u64(),
                    slab_capacity: frame.get_u64(),
                    epoch: frame.get_u64(),
                    handoff_in: frame.get_u64(),
                    handoff_out: frame.get_u64(),
                })
            }
            TAG_RING_UPDATE => {
                Self::need(frame, 12, "ring-update header")?;
                let epoch = frame.get_u64();
                let n = frame.get_u32() as usize;
                if n > MAX_MEMBERS {
                    return Err(CodecError::Malformed("ring-update member count"));
                }
                let mut members = Vec::with_capacity(n);
                for _ in 0..n {
                    members.push(Self::take_member(frame, "ring-update member")?);
                }
                Ok(Message::RingUpdate { epoch, members })
            }
            TAG_RING_ACK => {
                Self::need(frame, 8, "ring-ack")?;
                Ok(Message::RingAck { epoch: frame.get_u64() })
            }
            TAG_RING_REQ => Ok(Message::RingReq),
            TAG_JOIN_REQ => {
                Ok(Message::JoinReq { node: Self::take_member(frame, "join-req node")? })
            }
            TAG_LEAVE_REQ => {
                Ok(Message::LeaveReq { node: Self::take_member(frame, "leave-req node")? })
            }
            TAG_HANDOFF_DONE => {
                Self::need(frame, 16, "handoff-done")?;
                Ok(Message::HandoffDone { epoch: frame.get_u64(), keys: frame.get_u64() })
            }
            t => Err(CodecError::UnknownTag(t)),
        }
    }

    /// Decode one u16-length-prefixed UTF-8 member address. Rejects
    /// lengths over [`MAX_MEMBER_LEN`] and non-UTF-8 bytes as
    /// [`CodecError::Malformed`].
    fn take_member(frame: &mut BytesMut, what: &'static str) -> Result<String, CodecError> {
        Self::need(frame, 2, what)?;
        let len = frame.get_u16() as usize;
        if len > MAX_MEMBER_LEN {
            return Err(CodecError::Malformed(what));
        }
        Self::need(frame, len, what)?;
        let raw = frame.split_to(len);
        String::from_utf8(raw.to_vec()).map_err(|_| CodecError::Malformed(what))
    }

    fn request_id(frame: &mut BytesMut) -> Result<RequestId, CodecError> {
        Self::need(frame, 8, "request id")?;
        Ok(RequestId(frame.get_u64()))
    }

    /// Read a big-endian `u64` at `at` in an already-length-checked
    /// header slice. Compiles to one load — the serving-path decoders
    /// read their fixed headers through one slice borrow instead of a
    /// cursor advance per field.
    #[inline]
    fn be_u64(hdr: &[u8], at: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&hdr[at..at + 8]);
        u64::from_be_bytes(b)
    }

    #[inline]
    fn be_u32(hdr: &[u8], at: usize) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&hdr[at..at + 4]);
        u32::from_be_bytes(b)
    }

    fn decode_get_req(id: RequestId, frame: &mut BytesMut) -> Result<Message, CodecError> {
        Self::need(frame, 16, "get-req")?;
        let hdr: &[u8] = frame;
        let key = Self::be_u64(hdr, 0);
        let max_staleness = Self::be_u64(hdr, 8);
        frame.advance(16);
        Ok(Message::GetReq { id, key, max_staleness })
    }

    fn decode_get_resp(id: RequestId, frame: &mut BytesMut) -> Result<Message, CodecError> {
        Self::need(frame, 29, "get-resp header")?;
        let hdr: &[u8] = frame;
        let key = Self::be_u64(hdr, 0);
        let version = Self::be_u64(hdr, 8);
        let value_size = Self::be_u32(hdr, 16);
        let age = Self::be_u64(hdr, 20);
        let status_byte = hdr[28];
        let status =
            GetStatus::from_u8(status_byte).ok_or(CodecError::UnknownTag(status_byte))?;
        frame.advance(29);
        let value = Self::take_value(frame, value_size, "get-resp value")?;
        Ok(Message::GetResp { id, key, version, value, age, status })
    }

    fn decode_put_req(id: RequestId, frame: &mut BytesMut) -> Result<Message, CodecError> {
        Self::need(frame, 20, "put-req header")?;
        let hdr: &[u8] = frame;
        let key = Self::be_u64(hdr, 0);
        let value_size = Self::be_u32(hdr, 8);
        let ttl = Self::be_u64(hdr, 12);
        frame.advance(20);
        let value = Self::take_value(frame, value_size, "put-req value")?;
        Ok(Message::PutReq { id, key, value, ttl })
    }

    fn decode_put_resp(id: RequestId, frame: &mut BytesMut) -> Result<Message, CodecError> {
        Self::need(frame, 16, "put-resp")?;
        let hdr: &[u8] = frame;
        let key = Self::be_u64(hdr, 0);
        let version = Self::be_u64(hdr, 8);
        frame.advance(16);
        Ok(Message::PutResp { id, key, version })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(msg: &Message) -> Message {
        let mut out = BytesMut::new();
        FrameCodec::encode(msg, &mut out);
        assert_eq!(out.len(), msg.wire_size(), "wire_size must match encoding");
        let mut codec = FrameCodec::new();
        codec.feed(&out);
        codec.next().unwrap().expect("complete frame")
    }

    #[test]
    fn all_variants_roundtrip() {
        let msgs = vec![
            Message::ReadReq { key: 42 },
            Message::ReadResp { key: 42, version: 7, value_size: 100 },
            Message::WriteReq { key: 1, value_size: 0 },
            Message::WriteAck { key: 1, version: 3 },
            Message::Invalidate { seq: 9, keys: vec![1, 2, 3] },
            Message::Invalidate { seq: 10, keys: vec![] },
            Message::Update {
                seq: 11,
                items: vec![
                    UpdateItem { key: 1, version: 2, value: crate::payload::pattern(1, 10) },
                    UpdateItem { key: 2, version: 9, value: Bytes::new() },
                ],
            },
            Message::Ack { seq: 12 },
            Message::GetReq { id: RequestId(1), key: 3, max_staleness: u64::MAX },
            Message::GetReq { id: RequestId::NONE, key: 3, max_staleness: 5 },
            Message::GetResp {
                id: RequestId(u64::MAX),
                key: 3,
                version: 8,
                value: crate::payload::pattern(3, 77),
                age: 1_000_000,
                status: GetStatus::ServedStale,
            },
            Message::GetResp {
                id: RequestId(2),
                key: 4,
                version: 0,
                value: Bytes::new(),
                age: 0,
                status: GetStatus::Miss,
            },
            Message::PutReq {
                id: RequestId(3),
                key: 5,
                value: crate::payload::pattern(5, 256),
                ttl: 2_000_000_000,
            },
            Message::PutResp { id: RequestId(3), key: 5, version: 1 },
            Message::FetchReq { key: 6 },
            Message::FetchResp { key: 6, version: 2, value: crate::payload::pattern(6, 33) },
            Message::FetchResp { key: 7, version: 0, value: Bytes::new() },
            Message::ReadStats {
                entries: vec![ReadStat { key: 1, reads: 3 }, ReadStat { key: 2, reads: 1 }],
            },
            Message::ReadStats { entries: vec![] },
            Message::StatsReq,
            Message::StatsResp {
                refetches: 5,
                refetch_coalesced: 2,
                origin_errors: 0,
                cross_core_forwards: 9,
                slab_entries: 1024,
                slab_capacity: 2048,
                epoch: 3,
                handoff_in: 17,
                handoff_out: 4,
            },
            Message::RingUpdate {
                epoch: 7,
                members: vec!["127.0.0.1:7001".into(), "127.0.0.1:7002".into()],
            },
            Message::RingUpdate { epoch: 0, members: vec![] },
            Message::RingAck { epoch: 7 },
            Message::RingReq,
            Message::JoinReq { node: "10.0.0.3:7003".into() },
            Message::LeaveReq { node: "10.0.0.3:7003".into() },
            Message::HandoffDone { epoch: 8, keys: 512 },
        ];
        for m in msgs {
            assert_eq!(roundtrip(&m), m);
        }
    }

    #[test]
    fn rejects_oversized_fetch_resp_before_buffering_the_payload() {
        // The fetch-resp value_size sits at the same fixed offset as a
        // legacy get-resp's; the early check must refuse an over-limit
        // declaration after ~25 header bytes, not after 16 MiB.
        let declared = (MAX_VALUE as u32) + 1;
        let mut prefix = BytesMut::new();
        prefix.put_u32(5 + 20 + declared);
        prefix.put_u8(TAG_FETCH_RESP);
        prefix.put_u64(1); // key
        prefix.put_u64(1); // version
        prefix.put_u32(declared);
        let mut codec = FrameCodec::new();
        codec.feed(&prefix);
        assert!(codec.has_frame(), "poisoned prefix must be serviced without more input");
        assert_eq!(codec.next(), Err(CodecError::ValueTooLarge(declared)));
    }

    #[test]
    fn rejects_read_stats_count_beyond_frame() {
        // A read-stats header claiming 1<<29 entries inside a tiny frame
        // must fail on the missing entries, not allocate or spin.
        let mut frame = BytesMut::new();
        frame.put_u32(5 + 4);
        frame.put_u8(TAG_READ_STATS);
        frame.put_u32(1 << 29);
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        assert_eq!(codec.next(), Err(CodecError::Malformed("read-stats entries")));
    }

    #[test]
    fn streaming_partial_feeds() {
        let msg = Message::Update {
            seq: 5,
            items: vec![UpdateItem { key: 8, version: 1, value: crate::payload::pattern(8, 64) }],
        };
        let mut encoded = BytesMut::new();
        FrameCodec::encode(&msg, &mut encoded);
        let mut codec = FrameCodec::new();
        // Feed one byte at a time; must yield exactly once, at the end.
        let mut yielded = Vec::new();
        for (i, b) in encoded.iter().enumerate() {
            codec.feed(&[*b]);
            if let Some(m) = codec.next().unwrap() {
                yielded.push((i, m));
            }
        }
        assert_eq!(yielded.len(), 1);
        assert_eq!(yielded[0].0, encoded.len() - 1);
        assert_eq!(yielded[0].1, msg);
    }

    #[test]
    fn multiple_frames_in_one_feed() {
        let a = Message::ReadReq { key: 1 };
        let b = Message::Ack { seq: 2 };
        let mut encoded = BytesMut::new();
        FrameCodec::encode(&a, &mut encoded);
        FrameCodec::encode(&b, &mut encoded);
        let mut codec = FrameCodec::new();
        codec.feed(&encoded);
        assert_eq!(codec.next().unwrap(), Some(a));
        assert_eq!(codec.next().unwrap(), Some(b));
        assert_eq!(codec.next().unwrap(), None);
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut codec = FrameCodec::new();
        codec.feed(&[0, 0, 0, 6, 99, 0]);
        assert_eq!(codec.next(), Err(CodecError::UnknownTag(99)));
    }

    #[test]
    fn rejects_absurd_length() {
        let mut codec = FrameCodec::new();
        codec.feed(&[0xFF, 0xFF, 0xFF, 0xFF, 1]);
        assert!(matches!(codec.next(), Err(CodecError::BadLength(_))));
        let mut codec = FrameCodec::new();
        codec.feed(&[0, 0, 0, 2, 0]);
        assert!(matches!(codec.next(), Err(CodecError::BadLength(2))));
    }

    #[test]
    fn rejects_truncated_fields() {
        // Frame claims length 9 with tag read-req but only 4 key bytes.
        let mut codec = FrameCodec::new();
        codec.feed(&[0, 0, 0, 9, TAG_READ_REQ, 1, 2, 3, 4]);
        assert_eq!(codec.next(), Err(CodecError::Malformed("read-req key")));
    }

    #[test]
    fn rejects_frame_just_over_max() {
        // A length one past MAX_FRAME is a protocol error before any
        // payload arrives — a corrupted prefix must not make the decoder
        // wait for 64 MiB that will never come.
        let len = (MAX_FRAME as u32) + 1;
        let mut codec = FrameCodec::new();
        codec.feed(&len.to_be_bytes());
        assert_eq!(codec.next(), Err(CodecError::BadLength(len)));
    }

    #[test]
    fn rejects_truncated_value_payload() {
        // A write-req whose declared value_size exceeds the bytes actually
        // present in the frame must error, not read past the frame.
        let mut frame = BytesMut::new();
        frame.put_u32(5 + 12 + 4); // header + fields + only 4 value bytes
        frame.put_u8(TAG_WRITE_REQ);
        frame.put_u64(1); // key
        frame.put_u32(1000); // claims a 1000-byte value
        frame.put_bytes(0, 4);
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        assert_eq!(codec.next(), Err(CodecError::Malformed("write-req value")));
    }

    #[test]
    fn rejects_update_item_count_beyond_frame() {
        // An update header claiming 1<<30 items inside a small frame must
        // fail on the first missing item, not allocate or spin.
        let mut frame = BytesMut::new();
        frame.put_u32(5 + 12);
        frame.put_u8(TAG_UPDATE);
        frame.put_u64(1); // seq
        frame.put_u32(1 << 30); // item count
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        assert_eq!(codec.next(), Err(CodecError::Malformed("update item header")));
    }

    #[test]
    fn rejects_ring_update_member_count_beyond_limit() {
        // A ring-update header claiming an absurd member count must be
        // refused before any per-member allocation happens.
        let mut frame = BytesMut::new();
        frame.put_u32(5 + 12);
        frame.put_u8(TAG_RING_UPDATE);
        frame.put_u64(1); // epoch
        frame.put_u32((MAX_MEMBERS as u32) + 1);
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        assert_eq!(codec.next(), Err(CodecError::Malformed("ring-update member count")));
    }

    #[test]
    fn rejects_truncated_and_non_utf8_members() {
        // A member entry whose declared length runs past the frame end.
        let mut frame = BytesMut::new();
        frame.put_u32(5 + 12 + 2 + 3);
        frame.put_u8(TAG_RING_UPDATE);
        frame.put_u64(1); // epoch
        frame.put_u32(1); // one member
        frame.put_u16(100); // claims 100 bytes, only 3 present
        frame.put_slice(b"abc");
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        assert_eq!(codec.next(), Err(CodecError::Malformed("ring-update member")));

        // A join-req whose address bytes are not UTF-8.
        let mut frame = BytesMut::new();
        frame.put_u32(5 + 2 + 2);
        frame.put_u8(TAG_JOIN_REQ);
        frame.put_u16(2);
        frame.put_slice(&[0xFF, 0xFE]);
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        assert_eq!(codec.next(), Err(CodecError::Malformed("join-req node")));

        // A member length field over MAX_MEMBER_LEN is refused even if
        // the frame claims to contain that many bytes.
        let mut frame = BytesMut::new();
        let too_long = (MAX_MEMBER_LEN as u16) + 1;
        frame.put_u32(5 + 2 + too_long as u32);
        frame.put_u8(TAG_LEAVE_REQ);
        frame.put_u16(too_long);
        frame.put_bytes(b'a', too_long as usize);
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        assert_eq!(codec.next(), Err(CodecError::Malformed("leave-req node")));
    }

    #[test]
    fn rejects_unknown_get_status_byte() {
        let mut frame = BytesMut::new();
        frame.put_u32(5 + 29);
        frame.put_u8(TAG_GET_RESP);
        frame.put_u64(1); // key
        frame.put_u64(1); // version
        frame.put_u32(0); // value_size
        frame.put_u64(0); // age
        frame.put_u8(200); // bogus status
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        assert_eq!(codec.next(), Err(CodecError::UnknownTag(200)));
    }

    /// Hand-encode a legacy (id-less) serving-path frame: `u32` length,
    /// tag, then `body`.
    fn legacy_frame(tag: u8, body: &[u8]) -> BytesMut {
        let mut frame = BytesMut::new();
        frame.put_u32(5 + body.len() as u32);
        frame.put_u8(tag);
        frame.extend_from_slice(body);
        frame
    }

    #[test]
    fn decodes_legacy_idless_serving_tags() {
        // A pre-pipelining peer encodes GetReq as tag 8 with no id; the
        // decoder must still accept it and report RequestId::NONE.
        let mut body = BytesMut::new();
        body.put_u64(42); // key
        body.put_u64(u64::MAX); // max_staleness
        let mut codec = FrameCodec::new();
        codec.feed(&legacy_frame(TAG_GET_REQ, &body));
        assert_eq!(
            codec.next().unwrap(),
            Some(Message::GetReq { id: RequestId::NONE, key: 42, max_staleness: u64::MAX })
        );

        let mut body = BytesMut::new();
        body.put_u64(42); // key
        body.put_u64(7); // version
        body.put_u32(3); // value_size
        body.put_u64(99); // age
        body.put_u8(GetStatus::Fresh.as_u8());
        body.put_slice(&[0xA, 0xB, 0xC]); // value
        codec.feed(&legacy_frame(TAG_GET_RESP, &body));
        assert_eq!(
            codec.next().unwrap(),
            Some(Message::GetResp {
                id: RequestId::NONE,
                key: 42,
                version: 7,
                value: Bytes::from(&[0xAu8, 0xB, 0xC]),
                age: 99,
                status: GetStatus::Fresh,
            })
        );

        let mut body = BytesMut::new();
        body.put_u64(9); // key
        body.put_u32(2); // value_size
        body.put_u64(1_000); // ttl
        body.put_slice(&[1, 2]); // value
        codec.feed(&legacy_frame(TAG_PUT_REQ, &body));
        assert_eq!(
            codec.next().unwrap(),
            Some(Message::PutReq {
                id: RequestId::NONE,
                key: 9,
                value: Bytes::from(&[1u8, 2]),
                ttl: 1_000
            })
        );

        let mut body = BytesMut::new();
        body.put_u64(9); // key
        body.put_u64(4); // version
        codec.feed(&legacy_frame(TAG_PUT_RESP, &body));
        assert_eq!(
            codec.next().unwrap(),
            Some(Message::PutResp { id: RequestId::NONE, key: 9, version: 4 })
        );
    }

    #[test]
    fn encoder_emits_id_carrying_tags() {
        let mut wire = BytesMut::new();
        FrameCodec::encode(
            &Message::GetReq { id: RequestId(5), key: 1, max_staleness: 0 },
            &mut wire,
        );
        assert_eq!(wire[4], TAG_GET_REQ_ID, "byte after the length prefix is the new tag");
        // The id travels big-endian immediately after the tag.
        assert_eq!(&wire[5..13], &5u64.to_be_bytes());
    }

    #[test]
    fn encoder_emits_legacy_tags_for_id_none() {
        // A response to a legacy (id-less) request must be decodable by
        // the legacy peer, so NONE encodes under the old tag with no id
        // field — byte-identical to a pre-pipelining encoder's output.
        let mut wire = BytesMut::new();
        FrameCodec::encode(&Message::PutResp { id: RequestId::NONE, key: 2, version: 3 }, &mut wire);
        assert_eq!(wire.len(), 21);
        assert_eq!(wire[4], TAG_PUT_RESP);
        assert_eq!(&wire[5..13], &2u64.to_be_bytes(), "key follows the tag directly");
        // And re-encoding a decoded legacy frame reproduces it exactly.
        let mut codec = FrameCodec::new();
        codec.feed(&wire);
        let msg = codec.next().unwrap().unwrap();
        let mut reencoded = BytesMut::new();
        FrameCodec::encode(&msg, &mut reencoded);
        assert_eq!(reencoded, wire);
    }

    #[test]
    fn rejects_truncated_request_id() {
        // An id-carrying tag whose frame ends inside the id field.
        let mut frame = BytesMut::new();
        frame.put_u32(5 + 4);
        frame.put_u8(TAG_PUT_RESP_ID);
        frame.put_u32(1); // only 4 of the id's 8 bytes
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        assert_eq!(codec.next(), Err(CodecError::Malformed("request id")));
    }

    #[test]
    fn recovers_after_skipping_bad_frame() {
        // The frame is length-delimited, so after an in-frame decode error
        // the stream stays aligned: the next frame still parses.
        let mut wire = BytesMut::new();
        wire.put_u32(6);
        wire.put_u8(99); // unknown tag
        wire.put_u8(0);
        FrameCodec::encode(&Message::Ack { seq: 5 }, &mut wire);
        let mut codec = FrameCodec::new();
        codec.feed(&wire);
        assert_eq!(codec.next(), Err(CodecError::UnknownTag(99)));
        assert_eq!(codec.next().unwrap(), Some(Message::Ack { seq: 5 }));
    }

    #[test]
    fn decoded_payloads_share_the_accumulation_buffer() {
        // Two payload-carrying frames fed in ONE chunk: both decoded
        // values must be views of the same backing allocation (the
        // codec's accumulation buffer) — the zero-copy contract. A
        // copying decoder would hand each payload its own allocation.
        let a = Message::GetResp {
            id: RequestId(1),
            key: 7,
            version: 1,
            value: crate::payload::pattern(7, 4096),
            age: 0,
            status: GetStatus::Fresh,
        };
        let b = Message::PutReq {
            id: RequestId(2),
            key: 8,
            value: crate::payload::pattern(8, 1024),
            ttl: 0,
        };
        let mut wire = BytesMut::new();
        FrameCodec::encode(&a, &mut wire);
        FrameCodec::encode(&b, &mut wire);
        let mut codec = FrameCodec::new();
        codec.feed(&wire);
        let (Some(Message::GetResp { value: va, .. }), Some(Message::PutReq { value: vb, .. })) =
            (codec.next().unwrap(), codec.next().unwrap())
        else {
            panic!("expected the two payload frames back");
        };
        assert!(va.shares_allocation_with(&vb), "payloads were copied, not sliced");
        assert_eq!(va, crate::payload::pattern(7, 4096), "contents survive the slice");
        assert_eq!(vb, crate::payload::pattern(8, 1024));
    }

    #[test]
    fn roundtrips_zero_byte_and_max_size_values() {
        let empty = Message::PutReq { id: RequestId(1), key: 1, value: Bytes::new(), ttl: 0 };
        assert_eq!(roundtrip(&empty), empty);
        // Exactly MAX_VALUE is legal; the frame stays under MAX_FRAME.
        let max = Message::PutReq {
            id: RequestId(2),
            key: 2,
            value: Bytes::from(vec![0x5A; MAX_VALUE]),
            ttl: 0,
        };
        assert!(max.wire_size() <= MAX_FRAME);
        let back = roundtrip(&max);
        let Message::PutReq { value, .. } = &back else { panic!("wrong variant") };
        assert_eq!(value.len(), MAX_VALUE);
        assert_eq!(back, max);
    }

    #[test]
    fn rejects_value_size_beyond_limit() {
        // A frame whose declared value_size exceeds MAX_VALUE is a
        // protocol error even when the frame length itself looks small —
        // the length prefix must not be trusted on the decoder's behalf.
        let declared = (MAX_VALUE as u32) + 1;
        let mut frame = BytesMut::new();
        frame.put_u32(5 + 20 + 4);
        frame.put_u8(TAG_PUT_REQ);
        frame.put_u64(1); // key
        frame.put_u32(declared); // value_size over the limit
        frame.put_u64(0); // ttl
        frame.put_bytes(0, 4);
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        assert_eq!(codec.next(), Err(CodecError::ValueTooLarge(declared)));

        // Same rule on the simulation path's declared-size values.
        let mut frame = BytesMut::new();
        frame.put_u32(5 + 12);
        frame.put_u8(TAG_WRITE_REQ);
        frame.put_u64(1);
        frame.put_u32(declared);
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        assert_eq!(codec.next(), Err(CodecError::ValueTooLarge(declared)));

        // The error formats with the limit for operator logs.
        assert!(CodecError::ValueTooLarge(declared).to_string().contains("exceeds"));
    }

    #[test]
    fn rejects_oversized_value_before_buffering_the_payload() {
        // A PutReq declaring a >MAX_VALUE value is refused as soon as
        // the value_size field is readable — after ~17 header bytes,
        // not after accumulating the declared payload.
        let declared = (MAX_VALUE as u32) + 1;
        let mut prefix = BytesMut::new();
        prefix.put_u32(5 + 20 + declared); // a "legal"-looking length
        prefix.put_u8(TAG_PUT_REQ);
        prefix.put_u64(1); // key
        prefix.put_u32(declared); // value_size, over the limit
        let mut codec = FrameCodec::new();
        codec.feed(&prefix);
        assert!(codec.has_frame(), "poisoned prefix must be serviced without more input");
        assert_eq!(codec.next(), Err(CodecError::ValueTooLarge(declared)));

        // Same for the id-carrying GetResp offset.
        let mut prefix = BytesMut::new();
        prefix.put_u32(5 + 8 + 29 + declared);
        prefix.put_u8(TAG_GET_RESP_ID);
        prefix.put_u64(9); // request id
        prefix.put_u64(1); // key
        prefix.put_u64(1); // version
        prefix.put_u32(declared);
        let mut codec = FrameCodec::new();
        codec.feed(&prefix);
        assert_eq!(codec.next(), Err(CodecError::ValueTooLarge(declared)));
    }

    #[test]
    fn encode_into_reserves_headers_not_payloads() {
        // Queuing a large response must not allocate payload-scale
        // staging: the staging buffer ends up holding only the ~34
        // header bytes, with capacity in the same ballpark.
        let value = crate::payload::pattern(1, 1 << 20);
        let msg = Message::GetResp {
            id: RequestId(1),
            key: 1,
            version: 1,
            value,
            age: 0,
            status: GetStatus::Fresh,
        };
        let mut staging = BytesMut::new();
        let mut diverted = 0usize;
        FrameCodec::encode_into(&msg, &mut staging, |_, p| diverted += p.len());
        assert_eq!(diverted, 1 << 20);
        assert_eq!(staging.len(), msg.wire_size() - (1 << 20));
        assert!(
            staging.capacity() < 4096,
            "staging reserved payload-scale capacity: {}",
            staging.capacity()
        );
    }

    #[test]
    fn encode_into_diverts_payloads_without_copying() {
        // The segmented encoder hands payloads to the sink and keeps
        // only the surrounding header bytes in the staging buffer;
        // re-assembling staging + segments reproduces the contiguous
        // encoding byte-for-byte.
        let value = crate::payload::pattern(3, 2048);
        let msg = Message::GetResp {
            id: RequestId(9),
            key: 3,
            version: 2,
            value: value.clone(),
            age: 11,
            status: GetStatus::Fresh,
        };
        let mut staging = BytesMut::new();
        let mut segments: Vec<(usize, Bytes)> = Vec::new();
        FrameCodec::encode_into(&msg, &mut staging, |staging, payload| {
            segments.push((staging.len(), payload.clone()));
        });
        assert_eq!(segments.len(), 1);
        let (at, payload) = &segments[0];
        assert!(
            payload.shares_allocation_with(&value),
            "sink received the refcounted handle, not a copy"
        );
        assert_eq!(staging.len() + payload.len(), msg.wire_size());
        // Reassemble and decode.
        let mut wire = BytesMut::new();
        wire.extend_from_slice(&staging[..*at]);
        wire.extend_from_slice(payload);
        wire.extend_from_slice(&staging[*at..]);
        let mut contiguous = BytesMut::new();
        FrameCodec::encode(&msg, &mut contiguous);
        assert_eq!(&wire[..], &contiguous[..]);
    }

    #[test]
    fn is_idle_tracks_frame_boundaries() {
        let mut codec = FrameCodec::new();
        assert!(codec.is_idle());
        let mut wire = BytesMut::new();
        FrameCodec::encode(&Message::ReadReq { key: 1 }, &mut wire);
        codec.feed(&wire[..3]);
        assert!(!codec.is_idle(), "partial frame buffered");
        codec.feed(&wire[3..]);
        codec.next().unwrap().expect("complete frame");
        assert!(codec.is_idle(), "back on a frame boundary");
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_invalidate(
            seq in any::<u64>(),
            keys in proptest::collection::vec(any::<u64>(), 0..100),
        ) {
            let m = Message::Invalidate { seq, keys };
            prop_assert_eq!(roundtrip(&m), m);
        }

        #[test]
        fn roundtrip_arbitrary_update(
            seq in any::<u64>(),
            items in proptest::collection::vec(
                (any::<u64>(), any::<u64>(), 0usize..2048),
                0..50,
            ),
        ) {
            let m = Message::Update {
                seq,
                items: items
                    .into_iter()
                    .map(|(key, version, len)| UpdateItem {
                        key,
                        version,
                        value: crate::payload::pattern(key, len),
                    })
                    .collect(),
            };
            prop_assert_eq!(roundtrip(&m), m);
        }

        #[test]
        fn roundtrip_arbitrary_payload_bytes(
            key in any::<u64>(),
            ttl in any::<u64>(),
            value in proptest::collection::vec(any::<u8>(), 0..4096),
        ) {
            // Arbitrary payload contents — including 0-byte values — must
            // survive the frame boundary bit-exact in both directions.
            let put = Message::PutReq {
                id: RequestId(1),
                key,
                value: Bytes::from(value.clone()),
                ttl,
            };
            prop_assert_eq!(roundtrip(&put), put);
            let resp = Message::GetResp {
                id: RequestId(2),
                key,
                version: 3,
                value: Bytes::from(value),
                age: 9,
                status: GetStatus::Fresh,
            };
            prop_assert_eq!(roundtrip(&resp), resp);
        }

        #[test]
        fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut codec = FrameCodec::new();
            codec.feed(&data);
            // Drain until error, need-more, or exhaustion; must not panic.
            for _ in 0..64 {
                match codec.next() {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }
}
