//! Length-prefixed binary framing.
//!
//! Frame layout: `u32` total-length (including the 5-byte header), `u8`
//! message type, then type-specific fields in big-endian. Values are
//! carried as opaque zero bytes of the declared size — the simulation
//! never reads them, but they occupy wire bytes so that measured message
//! sizes match [`crate::Message::wire_size`] exactly.
//!
//! The decoder is *streaming*: feed it arbitrary byte chunks, it yields
//! complete messages and buffers partial frames (the Tokio-tutorial
//! framing pattern, without the async machinery the simulation doesn't
//! need).

use crate::msg::{GetStatus, Message, RequestId, UpdateItem};
use bytes::{Buf, BufMut, BytesMut};
use std::fmt;

/// Maximum accepted frame size; larger frames are a protocol error (guards
/// against a corrupted length prefix swallowing the stream).
pub const MAX_FRAME: usize = 64 << 20;

const TAG_READ_REQ: u8 = 1;
const TAG_READ_RESP: u8 = 2;
const TAG_WRITE_REQ: u8 = 3;
const TAG_WRITE_ACK: u8 = 4;
const TAG_INVALIDATE: u8 = 5;
const TAG_UPDATE: u8 = 6;
const TAG_ACK: u8 = 7;
// Legacy id-less serving-path tags. The encoder emits them only for
// messages whose id is `RequestId::NONE` — which is exactly what a
// request decoded from a legacy frame carries, so a response to an old
// peer is byte-compatible with that peer's decoder — and the decoder
// accepts them forever.
const TAG_GET_REQ: u8 = 8;
const TAG_GET_RESP: u8 = 9;
const TAG_PUT_REQ: u8 = 10;
const TAG_PUT_RESP: u8 = 11;
// Id-carrying serving-path tags: same body as their legacy counterpart
// with a u64 request id prepended.
const TAG_GET_REQ_ID: u8 = 12;
const TAG_GET_RESP_ID: u8 = 13;
const TAG_PUT_REQ_ID: u8 = 14;
const TAG_PUT_RESP_ID: u8 = 15;

/// Decode errors. Encoding is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Unknown message type byte (or an unknown enum byte inside a
    /// frame, e.g. a [`GetStatus`] the decoder does not recognise).
    UnknownTag(u8),
    /// Declared frame length exceeds [`MAX_FRAME`] or is shorter than a
    /// header.
    BadLength(u32),
    /// Frame contents shorter than its fields require.
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            CodecError::BadLength(l) => write!(f, "bad frame length {l}"),
            CodecError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Streaming frame codec.
///
/// ```
/// use bytes::BytesMut;
/// use fresca_net::{FrameCodec, Message, RequestId};
///
/// // Encode two messages back-to-back...
/// let get = Message::GetReq { id: RequestId(1), key: 1, max_staleness: u64::MAX };
/// let mut wire = BytesMut::new();
/// FrameCodec::encode(&get, &mut wire);
/// FrameCodec::encode(&Message::Ack { seq: 2 }, &mut wire);
///
/// // ...and decode them from arbitrary chunks on the other side.
/// let mut codec = FrameCodec::new();
/// codec.feed(&wire);
/// assert_eq!(codec.next().unwrap(), Some(get));
/// assert_eq!(codec.next().unwrap(), Some(Message::Ack { seq: 2 }));
/// assert_eq!(codec.next().unwrap(), None); // need more bytes
/// ```
#[derive(Debug, Default)]
pub struct FrameCodec {
    buf: BytesMut,
}

impl FrameCodec {
    /// New codec with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no partial frame is buffered — i.e. the byte stream, if
    /// it ended here, would end on a clean frame boundary. Used by
    /// [`crate::FramedStream`] to tell a clean EOF from a truncated one.
    pub fn is_idle(&self) -> bool {
        self.buf.is_empty()
    }

    /// True when [`next`](FrameCodec::next) would make progress without
    /// further input: a complete frame is buffered, or the buffered
    /// length prefix is already detectably invalid. Event loops use this
    /// to tell "frames pending in the decoder" apart from "waiting on
    /// the socket" — a connection with buffered frames must be serviced
    /// even if its descriptor never polls readable again.
    pub fn has_frame(&self) -> bool {
        match self.peek_len() {
            None => false,
            Some(Err(_)) => true,
            Some(Ok(len)) => self.buf.len() >= len,
        }
    }

    /// Parse the buffered length prefix, the one piece of header
    /// validation shared by [`next`](FrameCodec::next) and
    /// [`has_frame`](FrameCodec::has_frame) (so the two can never
    /// diverge): `None` until 4 bytes are buffered, `Some(Err)` for a
    /// length outside `5..=MAX_FRAME`.
    fn peek_len(&self) -> Option<Result<usize, CodecError>> {
        if self.buf.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if !(5..=MAX_FRAME as u32).contains(&len) {
            return Some(Err(CodecError::BadLength(len)));
        }
        Some(Ok(len as usize))
    }

    /// Encode one message into `out`.
    pub fn encode(msg: &Message, out: &mut BytesMut) {
        let total = msg.wire_size();
        out.reserve(total);
        out.put_u32(total as u32);
        match msg {
            Message::ReadReq { key } => {
                out.put_u8(TAG_READ_REQ);
                out.put_u64(*key);
            }
            Message::ReadResp { key, version, value_size } => {
                out.put_u8(TAG_READ_RESP);
                out.put_u64(*key);
                out.put_u64(*version);
                out.put_u32(*value_size);
                out.put_bytes(0, *value_size as usize);
            }
            Message::WriteReq { key, value_size } => {
                out.put_u8(TAG_WRITE_REQ);
                out.put_u64(*key);
                out.put_u32(*value_size);
                out.put_bytes(0, *value_size as usize);
            }
            Message::WriteAck { key, version } => {
                out.put_u8(TAG_WRITE_ACK);
                out.put_u64(*key);
                out.put_u64(*version);
            }
            Message::Invalidate { seq, keys } => {
                out.put_u8(TAG_INVALIDATE);
                out.put_u64(*seq);
                out.put_u32(keys.len() as u32);
                for k in keys {
                    out.put_u64(*k);
                }
            }
            Message::Update { seq, items } => {
                out.put_u8(TAG_UPDATE);
                out.put_u64(*seq);
                out.put_u32(items.len() as u32);
                for it in items {
                    out.put_u64(it.key);
                    out.put_u64(it.version);
                    out.put_u32(it.value_size);
                    out.put_bytes(0, it.value_size as usize);
                }
            }
            Message::Ack { seq } => {
                out.put_u8(TAG_ACK);
                out.put_u64(*seq);
            }
            Message::GetReq { id, key, max_staleness } => {
                Self::put_serving_tag(out, *id, TAG_GET_REQ, TAG_GET_REQ_ID);
                out.put_u64(*key);
                out.put_u64(*max_staleness);
            }
            Message::GetResp { id, key, version, value_size, age, status } => {
                Self::put_serving_tag(out, *id, TAG_GET_RESP, TAG_GET_RESP_ID);
                out.put_u64(*key);
                out.put_u64(*version);
                out.put_u32(*value_size);
                out.put_u64(*age);
                out.put_u8(status.as_u8());
                out.put_bytes(0, *value_size as usize);
            }
            Message::PutReq { id, key, value_size, ttl } => {
                Self::put_serving_tag(out, *id, TAG_PUT_REQ, TAG_PUT_REQ_ID);
                out.put_u64(*key);
                out.put_u32(*value_size);
                out.put_u64(*ttl);
                out.put_bytes(0, *value_size as usize);
            }
            Message::PutResp { id, key, version } => {
                Self::put_serving_tag(out, *id, TAG_PUT_RESP, TAG_PUT_RESP_ID);
                out.put_u64(*key);
                out.put_u64(*version);
            }
        }
    }

    /// Write a serving-path tag: the legacy id-less form when `id` is
    /// [`RequestId::NONE`] (so replies to legacy peers stay decodable by
    /// them), the id-carrying form otherwise.
    fn put_serving_tag(out: &mut BytesMut, id: RequestId, legacy: u8, with_id: u8) {
        if id.is_none() {
            out.put_u8(legacy);
        } else {
            out.put_u8(with_id);
            out.put_u64(id.0);
        }
    }

    /// Feed raw bytes into the decoder.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Try to decode the next complete frame. `Ok(None)` means "need more
    /// bytes". (Named like, but distinct from, `Iterator::next` — the
    /// fallible tri-state return does not fit the trait.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Message>, CodecError> {
        let len = match self.peek_len() {
            None => return Ok(None),
            Some(Err(e)) => return Err(e),
            Some(Ok(len)) => len,
        };
        if self.buf.len() < len {
            return Ok(None);
        }
        let mut frame = self.buf.split_to(len);
        frame.advance(4); // length
        let tag = frame.get_u8();
        let msg = Self::decode_body(tag, &mut frame)?;
        Ok(Some(msg))
    }

    fn need(frame: &BytesMut, n: usize, what: &'static str) -> Result<(), CodecError> {
        if frame.remaining() < n {
            Err(CodecError::Malformed(what))
        } else {
            Ok(())
        }
    }

    fn decode_body(tag: u8, frame: &mut BytesMut) -> Result<Message, CodecError> {
        match tag {
            TAG_READ_REQ => {
                Self::need(frame, 8, "read-req key")?;
                Ok(Message::ReadReq { key: frame.get_u64() })
            }
            TAG_READ_RESP => {
                Self::need(frame, 20, "read-resp header")?;
                let key = frame.get_u64();
                let version = frame.get_u64();
                let value_size = frame.get_u32();
                Self::need(frame, value_size as usize, "read-resp value")?;
                frame.advance(value_size as usize);
                Ok(Message::ReadResp { key, version, value_size })
            }
            TAG_WRITE_REQ => {
                Self::need(frame, 12, "write-req header")?;
                let key = frame.get_u64();
                let value_size = frame.get_u32();
                Self::need(frame, value_size as usize, "write-req value")?;
                frame.advance(value_size as usize);
                Ok(Message::WriteReq { key, value_size })
            }
            TAG_WRITE_ACK => {
                Self::need(frame, 16, "write-ack")?;
                Ok(Message::WriteAck { key: frame.get_u64(), version: frame.get_u64() })
            }
            TAG_INVALIDATE => {
                Self::need(frame, 12, "invalidate header")?;
                let seq = frame.get_u64();
                let n = frame.get_u32() as usize;
                Self::need(frame, n * 8, "invalidate keys")?;
                let keys = (0..n).map(|_| frame.get_u64()).collect();
                Ok(Message::Invalidate { seq, keys })
            }
            TAG_UPDATE => {
                Self::need(frame, 12, "update header")?;
                let seq = frame.get_u64();
                let n = frame.get_u32() as usize;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    Self::need(frame, 20, "update item header")?;
                    let key = frame.get_u64();
                    let version = frame.get_u64();
                    let value_size = frame.get_u32();
                    Self::need(frame, value_size as usize, "update item value")?;
                    frame.advance(value_size as usize);
                    items.push(UpdateItem { key, version, value_size });
                }
                Ok(Message::Update { seq, items })
            }
            TAG_ACK => {
                Self::need(frame, 8, "ack")?;
                Ok(Message::Ack { seq: frame.get_u64() })
            }
            // Serving-path tags come in legacy (id-less) and id-carrying
            // pairs; the bodies are identical past the optional id.
            TAG_GET_REQ => Self::decode_get_req(RequestId::NONE, frame),
            TAG_GET_REQ_ID => {
                let id = Self::request_id(frame)?;
                Self::decode_get_req(id, frame)
            }
            TAG_GET_RESP => Self::decode_get_resp(RequestId::NONE, frame),
            TAG_GET_RESP_ID => {
                let id = Self::request_id(frame)?;
                Self::decode_get_resp(id, frame)
            }
            TAG_PUT_REQ => Self::decode_put_req(RequestId::NONE, frame),
            TAG_PUT_REQ_ID => {
                let id = Self::request_id(frame)?;
                Self::decode_put_req(id, frame)
            }
            TAG_PUT_RESP => Self::decode_put_resp(RequestId::NONE, frame),
            TAG_PUT_RESP_ID => {
                let id = Self::request_id(frame)?;
                Self::decode_put_resp(id, frame)
            }
            t => Err(CodecError::UnknownTag(t)),
        }
    }

    fn request_id(frame: &mut BytesMut) -> Result<RequestId, CodecError> {
        Self::need(frame, 8, "request id")?;
        Ok(RequestId(frame.get_u64()))
    }

    fn decode_get_req(id: RequestId, frame: &mut BytesMut) -> Result<Message, CodecError> {
        Self::need(frame, 16, "get-req")?;
        Ok(Message::GetReq { id, key: frame.get_u64(), max_staleness: frame.get_u64() })
    }

    fn decode_get_resp(id: RequestId, frame: &mut BytesMut) -> Result<Message, CodecError> {
        Self::need(frame, 29, "get-resp header")?;
        let key = frame.get_u64();
        let version = frame.get_u64();
        let value_size = frame.get_u32();
        let age = frame.get_u64();
        let status_byte = frame.get_u8();
        let status =
            GetStatus::from_u8(status_byte).ok_or(CodecError::UnknownTag(status_byte))?;
        Self::need(frame, value_size as usize, "get-resp value")?;
        frame.advance(value_size as usize);
        Ok(Message::GetResp { id, key, version, value_size, age, status })
    }

    fn decode_put_req(id: RequestId, frame: &mut BytesMut) -> Result<Message, CodecError> {
        Self::need(frame, 20, "put-req header")?;
        let key = frame.get_u64();
        let value_size = frame.get_u32();
        let ttl = frame.get_u64();
        Self::need(frame, value_size as usize, "put-req value")?;
        frame.advance(value_size as usize);
        Ok(Message::PutReq { id, key, value_size, ttl })
    }

    fn decode_put_resp(id: RequestId, frame: &mut BytesMut) -> Result<Message, CodecError> {
        Self::need(frame, 16, "put-resp")?;
        Ok(Message::PutResp { id, key: frame.get_u64(), version: frame.get_u64() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(msg: &Message) -> Message {
        let mut out = BytesMut::new();
        FrameCodec::encode(msg, &mut out);
        assert_eq!(out.len(), msg.wire_size(), "wire_size must match encoding");
        let mut codec = FrameCodec::new();
        codec.feed(&out);
        codec.next().unwrap().expect("complete frame")
    }

    #[test]
    fn all_variants_roundtrip() {
        let msgs = vec![
            Message::ReadReq { key: 42 },
            Message::ReadResp { key: 42, version: 7, value_size: 100 },
            Message::WriteReq { key: 1, value_size: 0 },
            Message::WriteAck { key: 1, version: 3 },
            Message::Invalidate { seq: 9, keys: vec![1, 2, 3] },
            Message::Invalidate { seq: 10, keys: vec![] },
            Message::Update {
                seq: 11,
                items: vec![
                    UpdateItem { key: 1, version: 2, value_size: 10 },
                    UpdateItem { key: 2, version: 9, value_size: 0 },
                ],
            },
            Message::Ack { seq: 12 },
            Message::GetReq { id: RequestId(1), key: 3, max_staleness: u64::MAX },
            Message::GetReq { id: RequestId::NONE, key: 3, max_staleness: 5 },
            Message::GetResp {
                id: RequestId(u64::MAX),
                key: 3,
                version: 8,
                value_size: 77,
                age: 1_000_000,
                status: GetStatus::ServedStale,
            },
            Message::GetResp {
                id: RequestId(2),
                key: 4,
                version: 0,
                value_size: 0,
                age: 0,
                status: GetStatus::Miss,
            },
            Message::PutReq { id: RequestId(3), key: 5, value_size: 256, ttl: 2_000_000_000 },
            Message::PutResp { id: RequestId(3), key: 5, version: 1 },
        ];
        for m in msgs {
            assert_eq!(roundtrip(&m), m);
        }
    }

    #[test]
    fn streaming_partial_feeds() {
        let msg = Message::Update {
            seq: 5,
            items: vec![UpdateItem { key: 8, version: 1, value_size: 64 }],
        };
        let mut encoded = BytesMut::new();
        FrameCodec::encode(&msg, &mut encoded);
        let mut codec = FrameCodec::new();
        // Feed one byte at a time; must yield exactly once, at the end.
        let mut yielded = Vec::new();
        for (i, b) in encoded.iter().enumerate() {
            codec.feed(&[*b]);
            if let Some(m) = codec.next().unwrap() {
                yielded.push((i, m));
            }
        }
        assert_eq!(yielded.len(), 1);
        assert_eq!(yielded[0].0, encoded.len() - 1);
        assert_eq!(yielded[0].1, msg);
    }

    #[test]
    fn multiple_frames_in_one_feed() {
        let a = Message::ReadReq { key: 1 };
        let b = Message::Ack { seq: 2 };
        let mut encoded = BytesMut::new();
        FrameCodec::encode(&a, &mut encoded);
        FrameCodec::encode(&b, &mut encoded);
        let mut codec = FrameCodec::new();
        codec.feed(&encoded);
        assert_eq!(codec.next().unwrap(), Some(a));
        assert_eq!(codec.next().unwrap(), Some(b));
        assert_eq!(codec.next().unwrap(), None);
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut codec = FrameCodec::new();
        codec.feed(&[0, 0, 0, 6, 99, 0]);
        assert_eq!(codec.next(), Err(CodecError::UnknownTag(99)));
    }

    #[test]
    fn rejects_absurd_length() {
        let mut codec = FrameCodec::new();
        codec.feed(&[0xFF, 0xFF, 0xFF, 0xFF, 1]);
        assert!(matches!(codec.next(), Err(CodecError::BadLength(_))));
        let mut codec = FrameCodec::new();
        codec.feed(&[0, 0, 0, 2, 0]);
        assert!(matches!(codec.next(), Err(CodecError::BadLength(2))));
    }

    #[test]
    fn rejects_truncated_fields() {
        // Frame claims length 9 with tag read-req but only 4 key bytes.
        let mut codec = FrameCodec::new();
        codec.feed(&[0, 0, 0, 9, TAG_READ_REQ, 1, 2, 3, 4]);
        assert_eq!(codec.next(), Err(CodecError::Malformed("read-req key")));
    }

    #[test]
    fn rejects_frame_just_over_max() {
        // A length one past MAX_FRAME is a protocol error before any
        // payload arrives — a corrupted prefix must not make the decoder
        // wait for 64 MiB that will never come.
        let len = (MAX_FRAME as u32) + 1;
        let mut codec = FrameCodec::new();
        codec.feed(&len.to_be_bytes());
        assert_eq!(codec.next(), Err(CodecError::BadLength(len)));
    }

    #[test]
    fn rejects_truncated_value_payload() {
        // A write-req whose declared value_size exceeds the bytes actually
        // present in the frame must error, not read past the frame.
        let mut frame = BytesMut::new();
        frame.put_u32(5 + 12 + 4); // header + fields + only 4 value bytes
        frame.put_u8(TAG_WRITE_REQ);
        frame.put_u64(1); // key
        frame.put_u32(1000); // claims a 1000-byte value
        frame.put_bytes(0, 4);
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        assert_eq!(codec.next(), Err(CodecError::Malformed("write-req value")));
    }

    #[test]
    fn rejects_update_item_count_beyond_frame() {
        // An update header claiming 1<<30 items inside a small frame must
        // fail on the first missing item, not allocate or spin.
        let mut frame = BytesMut::new();
        frame.put_u32(5 + 12);
        frame.put_u8(TAG_UPDATE);
        frame.put_u64(1); // seq
        frame.put_u32(1 << 30); // item count
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        assert_eq!(codec.next(), Err(CodecError::Malformed("update item header")));
    }

    #[test]
    fn rejects_unknown_get_status_byte() {
        let mut frame = BytesMut::new();
        frame.put_u32(5 + 29);
        frame.put_u8(TAG_GET_RESP);
        frame.put_u64(1); // key
        frame.put_u64(1); // version
        frame.put_u32(0); // value_size
        frame.put_u64(0); // age
        frame.put_u8(200); // bogus status
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        assert_eq!(codec.next(), Err(CodecError::UnknownTag(200)));
    }

    /// Hand-encode a legacy (id-less) serving-path frame: `u32` length,
    /// tag, then `body`.
    fn legacy_frame(tag: u8, body: &[u8]) -> BytesMut {
        let mut frame = BytesMut::new();
        frame.put_u32(5 + body.len() as u32);
        frame.put_u8(tag);
        frame.extend_from_slice(body);
        frame
    }

    #[test]
    fn decodes_legacy_idless_serving_tags() {
        // A pre-pipelining peer encodes GetReq as tag 8 with no id; the
        // decoder must still accept it and report RequestId::NONE.
        let mut body = BytesMut::new();
        body.put_u64(42); // key
        body.put_u64(u64::MAX); // max_staleness
        let mut codec = FrameCodec::new();
        codec.feed(&legacy_frame(TAG_GET_REQ, &body));
        assert_eq!(
            codec.next().unwrap(),
            Some(Message::GetReq { id: RequestId::NONE, key: 42, max_staleness: u64::MAX })
        );

        let mut body = BytesMut::new();
        body.put_u64(42); // key
        body.put_u64(7); // version
        body.put_u32(3); // value_size
        body.put_u64(99); // age
        body.put_u8(GetStatus::Fresh.as_u8());
        body.put_bytes(0, 3); // value
        codec.feed(&legacy_frame(TAG_GET_RESP, &body));
        assert_eq!(
            codec.next().unwrap(),
            Some(Message::GetResp {
                id: RequestId::NONE,
                key: 42,
                version: 7,
                value_size: 3,
                age: 99,
                status: GetStatus::Fresh,
            })
        );

        let mut body = BytesMut::new();
        body.put_u64(9); // key
        body.put_u32(2); // value_size
        body.put_u64(1_000); // ttl
        body.put_bytes(0, 2); // value
        codec.feed(&legacy_frame(TAG_PUT_REQ, &body));
        assert_eq!(
            codec.next().unwrap(),
            Some(Message::PutReq { id: RequestId::NONE, key: 9, value_size: 2, ttl: 1_000 })
        );

        let mut body = BytesMut::new();
        body.put_u64(9); // key
        body.put_u64(4); // version
        codec.feed(&legacy_frame(TAG_PUT_RESP, &body));
        assert_eq!(
            codec.next().unwrap(),
            Some(Message::PutResp { id: RequestId::NONE, key: 9, version: 4 })
        );
    }

    #[test]
    fn encoder_emits_id_carrying_tags() {
        let mut wire = BytesMut::new();
        FrameCodec::encode(
            &Message::GetReq { id: RequestId(5), key: 1, max_staleness: 0 },
            &mut wire,
        );
        assert_eq!(wire[4], TAG_GET_REQ_ID, "byte after the length prefix is the new tag");
        // The id travels big-endian immediately after the tag.
        assert_eq!(&wire[5..13], &5u64.to_be_bytes());
    }

    #[test]
    fn encoder_emits_legacy_tags_for_id_none() {
        // A response to a legacy (id-less) request must be decodable by
        // the legacy peer, so NONE encodes under the old tag with no id
        // field — byte-identical to a pre-pipelining encoder's output.
        let mut wire = BytesMut::new();
        FrameCodec::encode(&Message::PutResp { id: RequestId::NONE, key: 2, version: 3 }, &mut wire);
        assert_eq!(wire.len(), 21);
        assert_eq!(wire[4], TAG_PUT_RESP);
        assert_eq!(&wire[5..13], &2u64.to_be_bytes(), "key follows the tag directly");
        // And re-encoding a decoded legacy frame reproduces it exactly.
        let mut codec = FrameCodec::new();
        codec.feed(&wire);
        let msg = codec.next().unwrap().unwrap();
        let mut reencoded = BytesMut::new();
        FrameCodec::encode(&msg, &mut reencoded);
        assert_eq!(reencoded, wire);
    }

    #[test]
    fn rejects_truncated_request_id() {
        // An id-carrying tag whose frame ends inside the id field.
        let mut frame = BytesMut::new();
        frame.put_u32(5 + 4);
        frame.put_u8(TAG_PUT_RESP_ID);
        frame.put_u32(1); // only 4 of the id's 8 bytes
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        assert_eq!(codec.next(), Err(CodecError::Malformed("request id")));
    }

    #[test]
    fn recovers_after_skipping_bad_frame() {
        // The frame is length-delimited, so after an in-frame decode error
        // the stream stays aligned: the next frame still parses.
        let mut wire = BytesMut::new();
        wire.put_u32(6);
        wire.put_u8(99); // unknown tag
        wire.put_u8(0);
        FrameCodec::encode(&Message::Ack { seq: 5 }, &mut wire);
        let mut codec = FrameCodec::new();
        codec.feed(&wire);
        assert_eq!(codec.next(), Err(CodecError::UnknownTag(99)));
        assert_eq!(codec.next().unwrap(), Some(Message::Ack { seq: 5 }));
    }

    #[test]
    fn is_idle_tracks_frame_boundaries() {
        let mut codec = FrameCodec::new();
        assert!(codec.is_idle());
        let mut wire = BytesMut::new();
        FrameCodec::encode(&Message::ReadReq { key: 1 }, &mut wire);
        codec.feed(&wire[..3]);
        assert!(!codec.is_idle(), "partial frame buffered");
        codec.feed(&wire[3..]);
        codec.next().unwrap().expect("complete frame");
        assert!(codec.is_idle(), "back on a frame boundary");
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_invalidate(
            seq in any::<u64>(),
            keys in proptest::collection::vec(any::<u64>(), 0..100),
        ) {
            let m = Message::Invalidate { seq, keys };
            prop_assert_eq!(roundtrip(&m), m);
        }

        #[test]
        fn roundtrip_arbitrary_update(
            seq in any::<u64>(),
            items in proptest::collection::vec(
                (any::<u64>(), any::<u64>(), 0u32..2048),
                0..50,
            ),
        ) {
            let m = Message::Update {
                seq,
                items: items
                    .into_iter()
                    .map(|(key, version, value_size)| UpdateItem { key, version, value_size })
                    .collect(),
            };
            prop_assert_eq!(roundtrip(&m), m);
        }

        #[test]
        fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut codec = FrameCodec::new();
            codec.feed(&data);
            // Drain until error, need-more, or exhaustion; must not panic.
            for _ in 0..64 {
                match codec.next() {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }
}
