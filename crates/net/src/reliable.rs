//! Reliable delivery for invalidate/update batches.
//!
//! §5, open question 1: "lost or re-ordered updates and invalidates may
//! cause a cached object to remain in a stale state in the cache
//! indefinitely". The fix evaluated by the `lossy` bench is the classic
//! one: sequence numbers, acknowledgements, timeout-based retransmission
//! on the sender ([`ReliableSender`]), and duplicate suppression on the
//! receiver ([`DedupReceiver`]).
//!
//! Both halves are scheduler-agnostic: the sender tells the caller *when*
//! the next retransmission check is due; the caller drives it from its
//! own clock. No threads, no timers of its own — same philosophy as the
//! rest of the workspace.

use crate::msg::Message;
use fresca_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashSet};

/// Sender half: assigns sequence numbers, tracks unacknowledged batches,
/// and produces retransmissions after a timeout.
#[derive(Debug)]
pub struct ReliableSender {
    next_seq: u64,
    rto: SimDuration,
    max_retries: u32,
    /// seq → (message, deadline, retries so far).
    pending: BTreeMap<u64, (Message, SimTime, u32)>,
    /// Batches abandoned after exhausting retries.
    gave_up: u64,
    retransmissions: u64,
}

impl ReliableSender {
    /// New sender with retransmission timeout `rto` and a retry budget.
    pub fn new(rto: SimDuration, max_retries: u32) -> Self {
        assert!(!rto.is_zero(), "rto must be positive");
        ReliableSender {
            next_seq: 1,
            rto,
            max_retries,
            pending: BTreeMap::new(),
            gave_up: 0,
            retransmissions: 0,
        }
    }

    /// Allocate the next sequence number (embed it in the outgoing message
    /// before calling [`ReliableSender::track`]).
    pub fn next_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Start tracking an outgoing message (must carry a seq).
    pub fn track(&mut self, msg: Message, now: SimTime) {
        let seq = msg.seq().expect("reliable messages carry a sequence number");
        self.pending.insert(seq, (msg, now + self.rto, 0));
    }

    /// Process an acknowledgement. Returns true if it cleared a pending
    /// batch (false for duplicates/strays).
    pub fn on_ack(&mut self, seq: u64) -> bool {
        self.pending.remove(&seq).is_some()
    }

    /// Collect retransmissions due at `now`. Each returned message has had
    /// its deadline re-armed; messages out of retries are dropped and
    /// counted in [`ReliableSender::gave_up`].
    pub fn due(&mut self, now: SimTime) -> Vec<Message> {
        let mut out = Vec::new();
        let mut abandon = Vec::new();
        for (&seq, (msg, deadline, retries)) in self.pending.iter_mut() {
            if *deadline > now {
                continue;
            }
            if *retries >= self.max_retries {
                abandon.push(seq);
                continue;
            }
            *retries += 1;
            // Exponential backoff: rto << retries.
            let backoff = SimDuration::from_nanos(
                self.rto.as_nanos().saturating_mul(1u64 << (*retries).min(16)),
            );
            *deadline = now + backoff;
            self.retransmissions += 1;
            out.push(msg.clone());
        }
        for seq in abandon {
            self.pending.remove(&seq);
            self.gave_up += 1;
        }
        out
    }

    /// Earliest pending retransmission deadline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending.values().map(|&(_, d, _)| d).min()
    }

    /// Unacknowledged batches.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Batches abandoned after the retry budget.
    pub fn gave_up(&self) -> u64 {
        self.gave_up
    }

    /// Retransmissions sent so far.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }
}

/// Receiver half: suppresses duplicate batches by sequence number.
///
/// Sequence numbers are never reused within a connection, so a plain set
/// suffices; `compact` trims it using the contiguity frontier when callers
/// want bounded memory.
#[derive(Debug, Default)]
pub struct DedupReceiver {
    seen: HashSet<u64>,
    /// All seqs `<= frontier` have been seen.
    frontier: u64,
    duplicates: u64,
}

impl DedupReceiver {
    /// New receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe a batch. Returns true if it is new (process it), false for
    /// a duplicate (ack it again, but don't re-apply).
    pub fn observe(&mut self, seq: u64) -> bool {
        if seq <= self.frontier || !self.seen.insert(seq) {
            self.duplicates += 1;
            return false;
        }
        // Advance the frontier over any contiguous run.
        while self.seen.remove(&(self.frontier + 1)) {
            self.frontier += 1;
        }
        true
    }

    /// Duplicates suppressed so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Number of out-of-order seqs currently buffered.
    pub fn pending_gap(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(seq: u64) -> Message {
        Message::Invalidate { seq, keys: vec![1] }
    }

    #[test]
    fn ack_clears_pending() {
        let mut s = ReliableSender::new(SimDuration::from_millis(10), 3);
        let seq = s.next_seq();
        s.track(inv(seq), SimTime::ZERO);
        assert_eq!(s.in_flight(), 1);
        assert!(s.on_ack(seq));
        assert!(!s.on_ack(seq), "second ack is a stray");
        assert_eq!(s.in_flight(), 0);
        assert!(s.due(SimTime::from_secs(1)).is_empty());
    }

    #[test]
    fn retransmits_after_rto() {
        let mut s = ReliableSender::new(SimDuration::from_millis(10), 3);
        let seq = s.next_seq();
        s.track(inv(seq), SimTime::ZERO);
        assert!(s.due(SimTime::from_millis(9)).is_empty(), "not due yet");
        let again = s.due(SimTime::from_millis(10));
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].seq(), Some(seq));
        assert_eq!(s.retransmissions(), 1);
    }

    #[test]
    fn exponential_backoff_spacing() {
        let mut s = ReliableSender::new(SimDuration::from_millis(10), 10);
        let seq = s.next_seq();
        s.track(inv(seq), SimTime::ZERO);
        // First retransmit at 10ms; deadline re-armed to now + 20ms.
        assert_eq!(s.due(SimTime::from_millis(10)).len(), 1);
        assert!(s.due(SimTime::from_millis(29)).is_empty());
        assert_eq!(s.due(SimTime::from_millis(30)).len(), 1);
        // Next: now + 40ms.
        assert!(s.due(SimTime::from_millis(69)).is_empty());
        assert_eq!(s.due(SimTime::from_millis(70)).len(), 1);
    }

    #[test]
    fn gives_up_after_retry_budget() {
        let mut s = ReliableSender::new(SimDuration::from_millis(1), 2);
        let seq = s.next_seq();
        s.track(inv(seq), SimTime::ZERO);
        let mut t = SimTime::ZERO;
        let mut sent = 0;
        for _ in 0..10 {
            t += SimDuration::from_secs(1);
            sent += s.due(t).len();
        }
        assert_eq!(sent, 2, "exactly max_retries retransmissions");
        assert_eq!(s.gave_up(), 1);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn dedup_accepts_once() {
        let mut r = DedupReceiver::new();
        assert!(r.observe(1));
        assert!(!r.observe(1));
        assert!(r.observe(2));
        assert!(!r.observe(2));
        assert_eq!(r.duplicates(), 2);
    }

    #[test]
    fn dedup_handles_reordering() {
        let mut r = DedupReceiver::new();
        assert!(r.observe(3));
        assert!(r.observe(1));
        assert!(r.observe(2));
        assert!(!r.observe(3), "3 was seen before the frontier caught up");
        // Frontier is now 3; memory is compacted.
        assert_eq!(r.pending_gap(), 0);
    }

    #[test]
    fn next_deadline_tracks_earliest() {
        let mut s = ReliableSender::new(SimDuration::from_millis(10), 3);
        assert_eq!(s.next_deadline(), None);
        let a = s.next_seq();
        s.track(inv(a), SimTime::ZERO);
        let b = s.next_seq();
        s.track(inv(b), SimTime::from_millis(5));
        assert_eq!(s.next_deadline(), Some(SimTime::from_millis(10)));
    }
}
