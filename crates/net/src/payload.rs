//! Deterministic value payloads and their checksums.
//!
//! Every writer in the serving pipeline (client puts, store-pushed
//! updates, benches) fills values with the same seeded pattern, so any
//! reader can verify a served value with nothing but the key and the
//! bytes it received: [`verify`] recomputes the FNV-1a checksum of the
//! expected pattern *for the received length* and compares. The pattern
//! seed mixes the length in, so a truncated or padded payload — the
//! framing-bug class wire-size accounting cannot catch — fails the
//! check even when the surviving prefix is byte-identical.
//!
//! [`zeroes`] serves the simulation path, which needs values that
//! occupy wire bytes without meaning anything: it slices a shared
//! thread-local zero buffer, so building a synthetic payload is a
//! refcount bump, not an allocation.

use bytes::Bytes;
use std::cell::RefCell;

/// The SplitMix64 finalizer: a cheap, statistically solid 64-bit mix.
/// Exposed so other deterministic draws (e.g. the load generator's
/// per-op value-size hash) share one set of constants.
#[inline]
pub fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 step — the tiny PRNG behind the pattern stream.
#[inline]
fn splitmix(state: &mut u64) -> u64 {
    let out = mix(*state);
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    out
}

/// Pattern seed for `(key, len)`. The length is folded in so values of
/// different sizes for the same key share no prefix.
#[inline]
fn seed(key: u64, len: usize) -> u64 {
    let mut s = key ^ (len as u64).rotate_left(32) ^ 0xA076_1D64_78BD_642F;
    splitmix(&mut s)
}

/// Drive `emit` with the pattern bytes for `(key, len)`, 8 at a time.
#[inline]
fn stream(key: u64, len: usize, mut emit: impl FnMut(&[u8])) {
    let mut state = seed(key, len);
    let mut remaining = len;
    while remaining > 0 {
        let word = splitmix(&mut state).to_le_bytes();
        let take = remaining.min(8);
        emit(&word[..take]);
        remaining -= take;
    }
}

/// The deterministic `len`-byte payload every writer uses for `key`.
pub fn pattern(key: u64, len: usize) -> Bytes {
    let mut out = Vec::with_capacity(len);
    stream(key, len, |chunk| out.extend_from_slice(chunk));
    Bytes::from(out)
}

/// FNV-1a over a byte slice (64-bit).
pub fn fnv1a(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = OFFSET;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// FNV-1a of the pattern for `(key, len)`, computed without
/// materializing the pattern.
pub fn expected_fnv(key: u64, len: usize) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = OFFSET;
    stream(key, len, |chunk| {
        for &b in chunk {
            hash ^= b as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    });
    hash
}

/// True when `value` is exactly the pattern a writer would have sent
/// for `key` at this length — the per-read integrity check the load
/// generator counts `checksum_mismatches` from.
///
/// ```
/// use fresca_net::payload;
///
/// let value = payload::pattern(7, 64);
/// assert!(payload::verify(7, &value));
/// assert!(!payload::verify(8, &value), "wrong key");
/// assert!(!payload::verify(7, &value[..63]), "truncated");
/// ```
pub fn verify(key: u64, value: &[u8]) -> bool {
    fnv1a(value) == expected_fnv(key, value.len())
}

thread_local! {
    /// Shared zero buffer backing [`zeroes`]; grows geometrically and is
    /// sliced by refcount, never copied.
    static ZERO_POOL: RefCell<Bytes> = RefCell::new(Bytes::new());
}

/// A `len`-byte all-zero payload for the simulation path. Slices a
/// shared thread-local buffer: after warm-up this allocates nothing.
pub fn zeroes(len: usize) -> Bytes {
    ZERO_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < len {
            *pool = Bytes::from(vec![0u8; len.next_power_of_two()]);
        }
        pool.slice(..len)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_is_deterministic_and_length_exact() {
        for len in [0usize, 1, 7, 8, 9, 64, 4096] {
            let a = pattern(42, len);
            let b = pattern(42, len);
            assert_eq!(a, b);
            assert_eq!(a.len(), len);
        }
        assert_ne!(pattern(1, 64), pattern(2, 64), "patterns differ by key");
    }

    #[test]
    fn verify_accepts_only_the_exact_pattern() {
        let v = pattern(9, 100);
        assert!(verify(9, &v));
        assert!(verify(9, &pattern(9, 0)), "empty payloads verify too");
        assert!(!verify(10, &v));
        assert!(!verify(9, &v[..99]), "truncation detected despite shared prefix bytes");
        let mut corrupted = v.to_vec();
        corrupted[50] ^= 1;
        assert!(!verify(9, &corrupted));
    }

    #[test]
    fn expected_fnv_matches_materialized_hash() {
        for len in [0usize, 3, 8, 100, 4096] {
            assert_eq!(expected_fnv(5, len), fnv1a(&pattern(5, len)), "len {len}");
        }
    }

    #[test]
    fn length_is_folded_into_the_seed() {
        let long = pattern(3, 16);
        let short = pattern(3, 8);
        assert_ne!(&long[..8], &short[..], "shorter pattern is not a prefix of the longer");
    }

    #[test]
    fn zeroes_slices_a_shared_pool() {
        let a = zeroes(100);
        let b = zeroes(64);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|&x| x == 0));
        assert!(
            a.shares_allocation_with(&b),
            "both sizes are views of one thread-local buffer"
        );
        let big = zeroes(1 << 16);
        assert_eq!(big.len(), 1 << 16);
    }
}
