//! # fresca-net — wire protocol and simulated network
//!
//! The paper's open question #1 (§5) is what lost or re-ordered
//! invalidates/updates do to freshness: unlike TTLs, a dropped invalidate
//! can leave a cached object stale *forever*. This crate provides the
//! machinery to study that:
//!
//! * [`msg`] — the cache⇄store protocol messages (read, write,
//!   batched invalidate/update, acks) with exact wire sizes, which also
//!   ground the byte-scaled cost model of Table 1.
//! * [`codec`] — a length-prefixed binary framing codec on [`bytes`]
//!   (`u32` length + type byte + fields), with a streaming decoder that
//!   tolerates partial frames and rejects oversized or malformed ones.
//! * [`simnet`] — a deterministic simulated network: configurable delay
//!   distribution plus smoltcp-style fault injection (drop, duplicate,
//!   reorder), driven entirely by the caller's scheduler.
//! * [`reliable`] — an ack + retransmission layer and a de-duplicating
//!   receiver, the fix the lossy-delivery experiment evaluates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod msg;
pub mod reliable;
pub mod simnet;

pub use codec::{CodecError, FrameCodec};
pub use msg::{Message, UpdateItem};
pub use reliable::{DedupReceiver, ReliableSender};
pub use simnet::{FaultConfig, NetStats, SimNetwork};
