//! # fresca-net — wire protocol and simulated network
//!
//! The paper's open question #1 (§5) is what lost or re-ordered
//! invalidates/updates do to freshness: unlike TTLs, a dropped invalidate
//! can leave a cached object stale *forever*. This crate provides the
//! machinery to study that:
//!
//! * [`msg`] — the protocol messages with exact wire sizes, which also
//!   ground the byte-scaled cost model of Table 1. Two families: the
//!   simulation-path cache⇄store messages (read, write, batched
//!   invalidate/update, acks) and the serving-path client⇄server
//!   messages (`GetReq`/`PutReq`/…) that carry the paper's freshness
//!   semantics — a per-request staleness bound, a per-key TTL, and a
//!   served/refused-stale response status.
//! * [`codec`] — a length-prefixed binary framing codec on [`bytes`]
//!   (`u32` length + type byte + fields), with a streaming decoder that
//!   tolerates partial frames and rejects oversized or malformed ones.
//!   Serving-path value payloads are real bytes, decoded as refcounted
//!   zero-copy slices of the receive buffer.
//! * [`frame_io`] — framed transports that run the codec over any
//!   `Read + Write` stream: the blocking [`FramedStream`] and the
//!   non-blocking [`NonBlockingFramedStream`], which accumulates partial
//!   reads and writes so a poll-driven event loop can multiplex thousands
//!   of connections, and drains its outbound segment queue with vectored
//!   writes so large payloads are never copied into a send buffer. These
//!   are what the `fresca-serve` server and load generator speak over
//!   real TCP.
//! * [`payload`] — deterministic, checksummable value payloads: every
//!   writer fills values with the same seeded pattern, so any reader can
//!   verify integrity end-to-end from the key and bytes alone.
//! * [`pin`] — the receive-buffer pinning heuristic: small values about
//!   to be *cached* out of a large read chunk are re-materialized into
//!   an exact allocation, so a long-lived 100 B value cannot pin a
//!   64 KiB receive buffer.
//! * [`simnet`] — a deterministic simulated network: configurable delay
//!   distribution plus smoltcp-style fault injection (drop, duplicate,
//!   reorder), driven entirely by the caller's scheduler.
//! * [`reliable`] — an ack + retransmission layer and a de-duplicating
//!   receiver, the fix the lossy-delivery experiment evaluates.

#![forbid(unsafe_code)]

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod frame_io;
pub mod msg;
pub mod payload;
pub mod pin;
pub mod reliable;
pub mod simnet;

pub use codec::{CodecError, FrameCodec, MAX_FRAME, MAX_VALUE};
pub use frame_io::{FramedStream, NonBlockingFramedStream, PollRecv};
pub use msg::{GetStatus, Message, ReadStat, RequestId, UpdateItem};
pub use reliable::{DedupReceiver, ReliableSender};
pub use simnet::{FaultConfig, NetStats, SimNetwork};
