//! Framed transports over any `Read + Write` byte stream.
//!
//! Two flavours share the streaming [`FrameCodec`]:
//!
//! * [`FramedStream`] — synchronous: `send` writes one complete frame,
//!   `recv` blocks until one complete frame decodes. One request in
//!   flight; the shape of the original thread-per-connection server.
//! * [`NonBlockingFramedStream`] — for poll-driven event loops over
//!   non-blocking sockets: `queue` buffers encoded frames, `flush`
//!   writes as much as the socket accepts (keeping the rest for later),
//!   and `poll_recv` accumulates partial reads until a frame completes,
//!   returning [`PollRecv::WouldBlock`] instead of blocking. This is the
//!   transport under the `fresca-serve` reactor and pipelined client.
//!
//! ## The zero-copy write path
//!
//! `queue` does **not** render frames into one contiguous buffer.
//! Headers and small payloads append to an open *staging* buffer; a
//! value payload of [`INLINE_PAYLOAD_MAX`] bytes or more closes the
//! staging segment and enters the outbound queue as its own refcounted
//! [`Bytes`] segment — the payload handed to `queue` is never memcpy'd.
//! `flush` then drains the queue with [`Write::write_vectored`], so one
//! syscall gathers many small frames *and* large payloads straight from
//! the cache's allocations. Streams without real scatter-gather support
//! fall back transparently: the default `write_vectored` writes the
//! first non-empty slice, and the flush loop simply comes around again.
//!
//! Both transports are generic over the stream so the protocol logic is
//! testable against in-memory buffers; in production `S` is a
//! [`std::net::TcpStream`].

use crate::codec::{CodecError, FrameCodec};
use crate::msg::Message;
use bytes::{Bytes, BytesMut};
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};

/// Read-chunk size. One syscall usually drains several small frames; a
/// value frame larger than this simply takes multiple reads.
const READ_CHUNK: usize = 64 * 1024;

/// Payloads smaller than this are copied into the staging buffer — below
/// it, the memcpy is cheaper than spending an iovec slot and a refcount
/// on the scatter-gather path. At or above it, payloads travel as their
/// own zero-copy segments.
pub const INLINE_PAYLOAD_MAX: usize = 512;

/// Most slices handed to one `write_vectored` call. 64 covers dozens of
/// small frames plus their interleaved payload segments per syscall
/// while keeping the stack array small (kernels cap at `IOV_MAX`, 1024).
const MAX_IOV: usize = 64;

/// A synchronous, framed [`Message`] pipe over a byte stream.
///
/// ```
/// use fresca_net::{payload, FramedStream, Message};
/// use std::io::{Cursor, Seek, SeekFrom};
///
/// // In-memory stand-in for a socket: write frames, rewind, read back.
/// use fresca_net::RequestId;
/// let put = Message::PutReq { id: RequestId(1), key: 9, value: payload::pattern(9, 16), ttl: 0 };
/// let mut pipe = FramedStream::new(Cursor::new(Vec::new()));
/// pipe.send(&put).unwrap();
/// pipe.get_mut().seek(SeekFrom::Start(0)).unwrap();
/// assert_eq!(pipe.recv().unwrap(), Some(put));
/// assert_eq!(pipe.recv().unwrap(), None); // clean EOF
/// ```
#[derive(Debug)]
pub struct FramedStream<S> {
    stream: S,
    codec: FrameCodec,
    chunk: Vec<u8>,
}

impl<S: Read + Write> FramedStream<S> {
    /// Wrap a byte stream.
    pub fn new(stream: S) -> Self {
        FramedStream { stream, codec: FrameCodec::new(), chunk: vec![0; READ_CHUNK] }
    }

    /// Shared access to the underlying stream (e.g. to read the peer
    /// address of a `TcpStream`).
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Exclusive access to the underlying stream (e.g. to set socket
    /// timeouts).
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Encode `msg` and write the complete frame, flushing the stream.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        let mut out = BytesMut::with_capacity(msg.wire_size());
        FrameCodec::encode(msg, &mut out);
        self.stream.write_all(&out)?;
        self.stream.flush()
    }

    /// Block until one complete message arrives. Returns `Ok(None)` on a
    /// clean EOF (the peer closed on a frame boundary); an EOF mid-frame
    /// is an [`io::ErrorKind::UnexpectedEof`] error, and a protocol
    /// violation (bad length, unknown tag, malformed fields) is an
    /// [`io::ErrorKind::InvalidData`] error.
    pub fn recv(&mut self) -> io::Result<Option<Message>> {
        loop {
            match self.codec.next() {
                Ok(Some(msg)) => return Ok(Some(msg)),
                Ok(None) => {}
                Err(e) => return Err(codec_err(e)),
            }
            let n = self.stream.read(&mut self.chunk)?;
            if n == 0 {
                return if self.codec.is_idle() {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream closed mid-frame",
                    ))
                };
            }
            self.codec.feed(&self.chunk[..n]);
        }
    }
}

fn codec_err(e: CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Outcome of a [`NonBlockingFramedStream::poll_recv`] attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PollRecv {
    /// One complete message decoded.
    Msg(Message),
    /// No complete frame buffered and the stream has no bytes right now;
    /// try again when the descriptor polls readable.
    WouldBlock,
    /// The peer closed cleanly on a frame boundary. (An EOF *mid-frame*
    /// is an [`io::ErrorKind::UnexpectedEof`] error instead.)
    Closed,
}

/// The outbound side of a [`NonBlockingFramedStream`]: an open staging
/// buffer for headers and small payloads, plus closed segments queued in
/// send order. Large payloads enter as refcounted [`Bytes`] handles —
/// never copied — and leave through `write_vectored`.
#[derive(Debug, Default)]
struct SegmentQueue {
    /// Open segment: frame headers and sub-[`INLINE_PAYLOAD_MAX`]
    /// payloads accumulate here until a large payload (or a flush)
    /// closes it.
    staging: BytesMut,
    /// Closed segments, in wire order.
    segs: VecDeque<Bytes>,
    /// Bytes of `segs[0]` already written to the stream.
    front_off: usize,
    /// Total unsent bytes across `segs` (net of `front_off`) and
    /// `staging`.
    len: usize,
}

impl SegmentQueue {
    fn queue(&mut self, msg: &Message) {
        let segs = &mut self.segs;
        FrameCodec::encode_into(msg, &mut self.staging, |staging, payload| {
            if payload.len() < INLINE_PAYLOAD_MAX {
                staging.extend_from_slice(payload);
            } else {
                // Wire order: everything staged so far precedes this
                // payload, so close the staging segment first. The
                // payload itself enters as a refcount bump.
                if !staging.is_empty() {
                    let closed = staging.split_to(staging.len()).freeze();
                    segs.push_back(closed);
                }
                segs.push_back(payload.clone());
            }
        });
        self.len += msg.wire_size();
    }

    /// Close the staging buffer into the segment queue so `fill_iov`
    /// sees every unsent byte.
    fn close_staging(&mut self) {
        if !self.staging.is_empty() {
            let closed = self.staging.split_to(self.staging.len()).freeze();
            self.segs.push_back(closed);
        }
    }

    /// Borrow up to [`MAX_IOV`] unsent slices for one gather write.
    fn fill_iov<'a>(&'a self, iov: &mut [IoSlice<'a>; MAX_IOV]) -> usize {
        let mut n = 0;
        for (i, seg) in self.segs.iter().enumerate() {
            if n == MAX_IOV {
                break;
            }
            let slice = if i == 0 { &seg[self.front_off..] } else { &seg[..] };
            if slice.is_empty() {
                continue;
            }
            iov[n] = IoSlice::new(slice);
            n += 1;
        }
        n
    }

    /// Account `written` bytes as gone, popping drained segments.
    fn consume(&mut self, mut written: usize) {
        self.len -= written;
        while written > 0 {
            let front = self.segs.front().expect("consumed more than was queued");
            let avail = front.len() - self.front_off;
            if written < avail {
                self.front_off += written;
                return;
            }
            written -= avail;
            self.front_off = 0;
            self.segs.pop_front();
        }
    }
}

/// A non-blocking, framed [`Message`] pipe that accumulates partial reads
/// and writes — the event-loop sibling of [`FramedStream`].
///
/// Reads: `poll_recv` drains the socket into the streaming codec and
/// yields at most one message per call; a frame split across any number
/// of reads reassembles transparently. Writes: `queue` encodes into an
/// outbound segment queue (large payloads as zero-copy [`Bytes`]
/// segments — see the module docs) and `flush` gathers as much as the
/// socket accepts with `write_vectored`, so a response to a slow reader
/// never blocks the event loop — the unsent tail stays buffered and the
/// caller keeps write interest until
/// [`wants_write`](NonBlockingFramedStream::wants_write) clears.
///
/// ```
/// use fresca_net::{Message, NonBlockingFramedStream, PollRecv, RequestId};
/// use std::io::{Cursor, Seek, SeekFrom};
///
/// // In-memory stand-in for a socket: queue + flush, rewind, read back.
/// let mut pipe = NonBlockingFramedStream::new(Cursor::new(Vec::new()));
/// let msg = Message::PutResp { id: RequestId(1), key: 9, version: 1 };
/// pipe.queue(&msg);
/// assert!(pipe.wants_write());
/// assert!(pipe.flush().unwrap(), "in-memory writes always drain");
/// assert!(!pipe.wants_write());
///
/// pipe.get_mut().seek(SeekFrom::Start(0)).unwrap();
/// assert_eq!(pipe.poll_recv().unwrap(), PollRecv::Msg(msg));
/// assert_eq!(pipe.poll_recv().unwrap(), PollRecv::Closed);
/// ```
#[derive(Debug)]
pub struct NonBlockingFramedStream<S> {
    stream: S,
    codec: FrameCodec,
    chunk: Vec<u8>,
    out: SegmentQueue,
}

impl<S: Read + Write> NonBlockingFramedStream<S> {
    /// Wrap a byte stream. The caller is responsible for having put the
    /// underlying descriptor into non-blocking mode (e.g.
    /// `TcpStream::set_nonblocking(true)`).
    pub fn new(stream: S) -> Self {
        NonBlockingFramedStream {
            stream,
            codec: FrameCodec::new(),
            // Allocated on the first standalone poll_recv and reused for
            // the life of the stream; event loops that serve thousands
            // of streams pass a shared scratch buffer to poll_recv_with
            // instead, so idle server connections cost no read-buffer
            // memory at all.
            chunk: Vec::new(),
            out: SegmentQueue::default(),
        }
    }

    /// Shared access to the underlying stream (e.g. to read the raw fd
    /// for poll registration).
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Exclusive access to the underlying stream.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Encode `msg` into the outbound queue. Large value payloads are
    /// queued as refcounted segments, not copied (see the module docs).
    /// Nothing touches the socket until
    /// [`flush`](NonBlockingFramedStream::flush).
    pub fn queue(&mut self, msg: &Message) {
        self.out.queue(msg);
    }

    /// True while unsent bytes are buffered — the caller should keep
    /// write interest registered and call
    /// [`flush`](NonBlockingFramedStream::flush) when writable.
    pub fn wants_write(&self) -> bool {
        self.out.len > 0
    }

    /// Unsent outbound bytes currently buffered.
    pub fn pending_out(&self) -> usize {
        self.out.len
    }

    /// True when at least one complete inbound frame (or a detectable
    /// protocol error) is buffered, so the next
    /// [`poll_recv`](NonBlockingFramedStream::poll_recv) will make
    /// progress without touching the socket. Event loops that bound work
    /// per tick must re-service such streams without waiting for
    /// readiness.
    pub fn has_buffered_frame(&self) -> bool {
        self.codec.has_frame()
    }

    /// Write as much buffered output as the stream accepts, gathering
    /// segments with `write_vectored`. Returns `Ok(true)` when the
    /// buffer fully drained, `Ok(false)` when the stream would block
    /// with bytes still pending.
    pub fn flush(&mut self) -> io::Result<bool> {
        self.out.close_staging();
        while self.out.len > 0 {
            let mut iov: [IoSlice<'_>; MAX_IOV] = std::array::from_fn(|_| IoSlice::new(&[]));
            let n = self.out.fill_iov(&mut iov);
            match self.stream.write_vectored(&iov[..n]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "stream accepted zero bytes",
                    ))
                }
                Ok(written) => self.out.consume(written),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Try to receive one message without blocking. Buffered frames are
    /// served before the socket is read again, so call in a loop until
    /// [`PollRecv::WouldBlock`]. Protocol violations surface as
    /// [`io::ErrorKind::InvalidData`], an EOF mid-frame as
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn poll_recv(&mut self) -> io::Result<PollRecv> {
        if self.chunk.is_empty() {
            // One allocation for the life of the stream; every later
            // call reads through the same buffer (see the
            // scratch-stability test below).
            self.chunk = vec![0; READ_CHUNK];
        }
        poll_recv_impl(&mut self.stream, &mut self.codec, &mut self.chunk)
    }

    /// [`poll_recv`](NonBlockingFramedStream::poll_recv), reading
    /// through a caller-provided scratch buffer instead of a private
    /// one. An event loop multiplexing thousands of streams shares one
    /// scratch across all of them — the buffer holds no state between
    /// calls, it is only the landing zone for `read(2)`.
    pub fn poll_recv_with(&mut self, scratch: &mut [u8]) -> io::Result<PollRecv> {
        poll_recv_impl(&mut self.stream, &mut self.codec, scratch)
    }
}

/// The shared receive loop: decode buffered frames first, then read the
/// stream through `scratch` until a frame completes or it would block.
/// Free-standing so `poll_recv` can lend the stream's own reusable
/// buffer without any take-and-put-back dance.
fn poll_recv_impl<S: Read>(
    stream: &mut S,
    codec: &mut FrameCodec,
    scratch: &mut [u8],
) -> io::Result<PollRecv> {
    assert!(!scratch.is_empty(), "scratch buffer must be non-empty");
    loop {
        match codec.next() {
            Ok(Some(msg)) => return Ok(PollRecv::Msg(msg)),
            Ok(None) => {}
            Err(e) => return Err(codec_err(e)),
        }
        match stream.read(scratch) {
            Ok(0) => {
                return if codec.is_idle() {
                    Ok(PollRecv::Closed)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream closed mid-frame",
                    ))
                };
            }
            Ok(n) => codec.feed(&scratch[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(PollRecv::WouldBlock),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{GetStatus, RequestId};
    use crate::payload;
    use std::io::{Cursor, Seek, SeekFrom};

    /// Write messages into an in-memory cursor, rewind, and hand back a
    /// stream positioned for reading.
    fn loopback(msgs: &[Message]) -> FramedStream<Cursor<Vec<u8>>> {
        let mut s = FramedStream::new(Cursor::new(Vec::new()));
        for m in msgs {
            s.send(m).unwrap();
        }
        s.get_mut().seek(SeekFrom::Start(0)).unwrap();
        s
    }

    #[test]
    fn send_recv_roundtrip() {
        let msgs = vec![
            Message::GetReq { id: RequestId(1), key: 1, max_staleness: 500 },
            Message::PutReq {
                id: RequestId(2),
                key: 2,
                value: payload::pattern(2, 1000),
                ttl: 1_000_000,
            },
            Message::Ack { seq: 3 },
        ];
        let mut s = loopback(&msgs);
        for m in &msgs {
            assert_eq!(s.recv().unwrap().as_ref(), Some(m));
        }
        assert_eq!(s.recv().unwrap(), None, "clean EOF after the last frame");
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut s =
            loopback(&[Message::GetReq { id: RequestId(1), key: 1, max_staleness: 0 }]);
        // Truncate the underlying buffer mid-frame.
        let buf = s.get_mut().get_mut();
        buf.truncate(buf.len() - 3);
        let err = s.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn garbage_is_invalid_data() {
        let mut s = FramedStream::new(Cursor::new(vec![0xFF; 32]));
        let err = s.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// A stream that yields one byte per read and accepts one byte per
    /// write, interleaving `WouldBlock` between every byte — the worst
    /// case a non-blocking socket can legally present.
    struct Trickle {
        input: Vec<u8>,
        read_pos: usize,
        read_ready: bool,
        output: Vec<u8>,
        write_ready: bool,
    }

    impl Trickle {
        fn new(input: Vec<u8>) -> Self {
            Trickle { input, read_pos: 0, read_ready: false, output: Vec::new(), write_ready: false }
        }
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.read_ready = !self.read_ready;
            if !self.read_ready {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            if self.read_pos >= self.input.len() {
                return Ok(0); // EOF
            }
            buf[0] = self.input[self.read_pos];
            self.read_pos += 1;
            Ok(1)
        }
    }

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.write_ready = !self.write_ready;
            if !self.write_ready {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            self.output.push(buf[0]);
            Ok(1)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn nonblocking_reassembles_frames_fed_one_byte_at_a_time() {
        let msgs = [
            Message::GetReq { id: RequestId(1), key: 7, max_staleness: u64::MAX },
            Message::GetResp {
                id: RequestId(1),
                key: 7,
                version: 3,
                value: payload::pattern(7, 50),
                age: 12,
                status: GetStatus::Fresh,
            },
            Message::PutResp { id: RequestId(2), key: 8, version: 4 },
        ];
        let mut wire = BytesMut::new();
        for m in &msgs {
            FrameCodec::encode(m, &mut wire);
        }
        let mut s = NonBlockingFramedStream::new(Trickle::new(wire.to_vec()));
        // Drive poll_recv the way an event loop would: each WouldBlock is
        // a poll wakeup away from more bytes. Every frame must reassemble
        // exactly once, in order, despite arriving one byte per read.
        let mut got = Vec::new();
        loop {
            match s.poll_recv().unwrap() {
                PollRecv::Msg(m) => got.push(m),
                PollRecv::WouldBlock => continue,
                PollRecv::Closed => break,
            }
        }
        assert_eq!(got, msgs);
    }

    #[test]
    fn read_scratch_buffer_is_stable_across_ticks() {
        // The standalone read path must allocate its 64 KiB scratch once
        // and reuse it every tick — re-creating it per poll_recv would
        // put a 64 KiB allocation on every reactor iteration.
        let msg = Message::Ack { seq: 1 };
        let mut wire = BytesMut::new();
        for _ in 0..4 {
            FrameCodec::encode(&msg, &mut wire);
        }
        let mut s = NonBlockingFramedStream::new(Trickle::new(wire.to_vec()));
        assert!(s.chunk.is_empty(), "scratch is lazy until the first read");
        let _first = s.poll_recv().unwrap();
        let ptr = s.chunk.as_ptr();
        assert_eq!(s.chunk.len(), READ_CHUNK);
        let mut msgs = 0;
        loop {
            match s.poll_recv().unwrap() {
                PollRecv::Msg(_) => msgs += 1,
                PollRecv::WouldBlock => continue,
                PollRecv::Closed => break,
            }
            assert_eq!(s.chunk.as_ptr(), ptr, "scratch reallocated between ticks");
        }
        assert!(msgs >= 3);
        assert_eq!(s.chunk.as_ptr(), ptr);
    }

    #[test]
    fn nonblocking_flush_retains_unsent_tail() {
        let msg = Message::PutReq {
            id: RequestId(9),
            key: 1,
            value: payload::pattern(1, 32),
            ttl: 0,
        };
        let mut s = NonBlockingFramedStream::new(Trickle::new(Vec::new()));
        s.queue(&msg);
        let total = msg.wire_size();
        assert_eq!(s.pending_out(), total);
        // One byte leaves per flush call (the trickle accepts 1 then
        // blocks); the buffer must shrink monotonically to zero.
        let mut flushes = 0;
        while s.wants_write() {
            s.flush().unwrap();
            flushes += 1;
            assert!(flushes <= 2 * total + 2, "flush failed to make progress");
        }
        assert!(s.flush().unwrap(), "drained stream reports complete");
        // The bytes that arrived are exactly the encoded frame.
        let mut codec = FrameCodec::new();
        codec.feed(&s.get_ref().output);
        assert_eq!(codec.next().unwrap(), Some(msg));
    }

    #[test]
    fn segment_queue_preserves_wire_order_across_mixed_frames() {
        // Interleave small frames (staged) with large-payload frames
        // (zero-copy segments): the byte stream leaving the socket must
        // decode to exactly the queued sequence.
        let msgs = [
            Message::Ack { seq: 1 },
            Message::GetResp {
                id: RequestId(1),
                key: 5,
                version: 2,
                value: payload::pattern(5, 4096),
                age: 3,
                status: GetStatus::Fresh,
            },
            Message::Ack { seq: 2 },
            Message::PutReq {
                id: RequestId(2),
                key: 6,
                value: payload::pattern(6, INLINE_PAYLOAD_MAX), // exactly at the threshold
                ttl: 9,
            },
            Message::PutReq {
                id: RequestId(3),
                key: 7,
                value: payload::pattern(7, INLINE_PAYLOAD_MAX - 1), // just below: inlined
                ttl: 9,
            },
            Message::Ack { seq: 3 },
        ];
        let mut s = NonBlockingFramedStream::new(Trickle::new(Vec::new()));
        let mut expected_pending = 0;
        for m in &msgs {
            s.queue(m);
            expected_pending += m.wire_size();
        }
        assert_eq!(s.pending_out(), expected_pending);
        while s.wants_write() {
            s.flush().unwrap();
        }
        let mut codec = FrameCodec::new();
        codec.feed(&s.get_ref().output);
        for m in &msgs {
            assert_eq!(codec.next().unwrap().as_ref(), Some(m));
        }
        assert_eq!(codec.next().unwrap(), None);
    }

    #[test]
    fn queued_large_payload_is_not_copied() {
        let value = payload::pattern(1, 8192);
        let msg = Message::PutReq { id: RequestId(1), key: 1, value: value.clone(), ttl: 0 };
        let mut s = NonBlockingFramedStream::new(Trickle::new(Vec::new()));
        s.queue(&msg);
        // The queue holds the refcounted handle itself, not a copy.
        assert!(
            s.out.segs.iter().any(|seg| seg.shares_allocation_with(&value)),
            "large payload should sit in the queue as a shared segment"
        );
    }

    /// A stream that records how many slices each `write_vectored` call
    /// received, to pin that flushing actually gathers.
    struct VectoredRecorder {
        output: Vec<u8>,
        slices_per_call: Vec<usize>,
    }

    impl Read for VectoredRecorder {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Err(io::ErrorKind::WouldBlock.into())
        }
    }

    impl Write for VectoredRecorder {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            self.slices_per_call.push(bufs.len());
            let mut n = 0;
            for b in bufs {
                self.output.extend_from_slice(b);
                n += b.len();
            }
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn flush_gathers_many_segments_per_syscall() {
        let rec = VectoredRecorder { output: Vec::new(), slices_per_call: Vec::new() };
        let mut s = NonBlockingFramedStream::new(rec);
        // header / payload / header / payload / header: 5 segments.
        s.queue(&Message::GetResp {
            id: RequestId(1),
            key: 1,
            version: 1,
            value: payload::pattern(1, 2048),
            age: 0,
            status: GetStatus::Fresh,
        });
        s.queue(&Message::GetResp {
            id: RequestId(2),
            key: 2,
            version: 1,
            value: payload::pattern(2, 2048),
            age: 0,
            status: GetStatus::Fresh,
        });
        s.queue(&Message::Ack { seq: 1 });
        assert!(s.flush().unwrap());
        let rec = s.get_ref();
        assert_eq!(rec.slices_per_call, vec![5], "one gather write drained all segments");
        // And the gathered bytes decode to the queued frames, in order.
        let mut codec = FrameCodec::new();
        codec.feed(&rec.output);
        assert!(matches!(codec.next().unwrap(), Some(Message::GetResp { key: 1, .. })));
        assert!(matches!(codec.next().unwrap(), Some(Message::GetResp { key: 2, .. })));
        assert_eq!(codec.next().unwrap(), Some(Message::Ack { seq: 1 }));
    }

    #[test]
    fn nonblocking_eof_mid_frame_is_an_error() {
        let msg = Message::Ack { seq: 1 };
        let mut wire = BytesMut::new();
        FrameCodec::encode(&msg, &mut wire);
        let truncated = wire[..wire.len() - 2].to_vec();
        let mut s = NonBlockingFramedStream::new(Trickle::new(truncated));
        let err = loop {
            match s.poll_recv() {
                Ok(PollRecv::WouldBlock) => continue,
                Ok(other) => panic!("expected mid-frame EOF, got {other:?}"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn nonblocking_garbage_is_invalid_data() {
        let mut s = NonBlockingFramedStream::new(Trickle::new(vec![0xFF; 8]));
        let err = loop {
            match s.poll_recv() {
                Ok(PollRecv::WouldBlock) => continue,
                Ok(other) => panic!("expected protocol error, got {other:?}"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
