//! Blocking framed transport over any `Read + Write` byte stream.
//!
//! [`FramedStream`] turns the streaming [`FrameCodec`] into a synchronous
//! message pipe: `send` encodes one [`Message`] and writes the complete
//! frame; `recv` reads raw chunks until one complete frame decodes. This
//! is the transport used by the `fresca-serve` server and load generator
//! over real TCP sockets — the same frames the simulated network
//! (`simnet`) accounts for byte-by-byte, now actually crossing a network
//! boundary.
//!
//! The type is generic over the stream so the protocol logic is testable
//! against in-memory buffers; in production `S` is a
//! [`std::net::TcpStream`].

use crate::codec::{CodecError, FrameCodec};
use crate::msg::Message;
use bytes::BytesMut;
use std::io::{self, Read, Write};

/// Read-chunk size. One syscall usually drains several small frames; a
/// value frame larger than this simply takes multiple reads.
const READ_CHUNK: usize = 64 * 1024;

/// A synchronous, framed [`Message`] pipe over a byte stream.
///
/// ```
/// use fresca_net::{FramedStream, Message};
/// use std::io::{Cursor, Seek, SeekFrom};
///
/// // In-memory stand-in for a socket: write frames, rewind, read back.
/// let mut pipe = FramedStream::new(Cursor::new(Vec::new()));
/// pipe.send(&Message::PutReq { key: 9, value_size: 16, ttl: 0 }).unwrap();
/// pipe.get_mut().seek(SeekFrom::Start(0)).unwrap();
/// let msg = pipe.recv().unwrap();
/// assert_eq!(msg, Some(Message::PutReq { key: 9, value_size: 16, ttl: 0 }));
/// assert_eq!(pipe.recv().unwrap(), None); // clean EOF
/// ```
#[derive(Debug)]
pub struct FramedStream<S> {
    stream: S,
    codec: FrameCodec,
    chunk: Vec<u8>,
}

impl<S: Read + Write> FramedStream<S> {
    /// Wrap a byte stream.
    pub fn new(stream: S) -> Self {
        FramedStream { stream, codec: FrameCodec::new(), chunk: vec![0; READ_CHUNK] }
    }

    /// Shared access to the underlying stream (e.g. to read the peer
    /// address of a `TcpStream`).
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Exclusive access to the underlying stream (e.g. to set socket
    /// timeouts).
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Encode `msg` and write the complete frame, flushing the stream.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        let mut out = BytesMut::with_capacity(msg.wire_size());
        FrameCodec::encode(msg, &mut out);
        self.stream.write_all(&out)?;
        self.stream.flush()
    }

    /// Block until one complete message arrives. Returns `Ok(None)` on a
    /// clean EOF (the peer closed on a frame boundary); an EOF mid-frame
    /// is an [`io::ErrorKind::UnexpectedEof`] error, and a protocol
    /// violation (bad length, unknown tag, malformed fields) is an
    /// [`io::ErrorKind::InvalidData`] error.
    pub fn recv(&mut self) -> io::Result<Option<Message>> {
        loop {
            match self.codec.next() {
                Ok(Some(msg)) => return Ok(Some(msg)),
                Ok(None) => {}
                Err(e) => return Err(codec_err(e)),
            }
            let n = self.stream.read(&mut self.chunk)?;
            if n == 0 {
                return if self.codec.is_idle() {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream closed mid-frame",
                    ))
                };
            }
            self.codec.feed(&self.chunk[..n]);
        }
    }
}

fn codec_err(e: CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Cursor, Seek, SeekFrom};

    /// Write messages into an in-memory cursor, rewind, and hand back a
    /// stream positioned for reading.
    fn loopback(msgs: &[Message]) -> FramedStream<Cursor<Vec<u8>>> {
        let mut s = FramedStream::new(Cursor::new(Vec::new()));
        for m in msgs {
            s.send(m).unwrap();
        }
        s.get_mut().seek(SeekFrom::Start(0)).unwrap();
        s
    }

    #[test]
    fn send_recv_roundtrip() {
        let msgs = vec![
            Message::GetReq { key: 1, max_staleness: 500 },
            Message::PutReq { key: 2, value_size: 1000, ttl: 1_000_000 },
            Message::Ack { seq: 3 },
        ];
        let mut s = loopback(&msgs);
        for m in &msgs {
            assert_eq!(s.recv().unwrap().as_ref(), Some(m));
        }
        assert_eq!(s.recv().unwrap(), None, "clean EOF after the last frame");
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut s = loopback(&[Message::GetReq { key: 1, max_staleness: 0 }]);
        // Truncate the underlying buffer mid-frame.
        let buf = s.get_mut().get_mut();
        buf.truncate(buf.len() - 3);
        let err = s.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn garbage_is_invalid_data() {
        let mut s = FramedStream::new(Cursor::new(vec![0xFF; 32]));
        let err = s.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
